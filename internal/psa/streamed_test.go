package psa

import (
	"os"
	"path/filepath"
	"testing"

	"mdtask/internal/engine"
	"mdtask/internal/hausdorff"
	"mdtask/internal/traj"
)

// The streamed serial path must reproduce the in-memory reference bit
// for bit at every window size — including windows that do not divide
// the frame count — for every kernel method and both schedules, from
// both memory-backed and file-backed refs.
func TestSerialStreamedMatchesInMemory(t *testing.T) {
	const n, atoms, frames = 5, 6, 7
	ens := testEnsemble(n, atoms, frames)
	want, err := Serial(ens, Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fileRefs := make(traj.RefEnsemble, n)
	for i, tr := range ens {
		path := filepath.Join(dir, tr.Name+"-"+string(rune('a'+i))+".mdt")
		if err := traj.WriteMDTFile(path, tr, 8); err != nil {
			t.Fatal(err)
		}
		fileRefs[i], err = traj.FileRef(path)
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, backing := range []struct {
		name string
		refs traj.RefEnsemble
	}{
		{"mem", traj.RefsOf(ens)},
		{"file", fileRefs},
	} {
		for _, m := range hausdorff.Methods {
			for _, sym := range []bool{false, true} {
				for _, w := range []int{1, 2, 3, frames, frames + 5} {
					sink := &engine.Metrics{}
					got, err := SerialRefs(backing.refs, Opts{
						Symmetric: sym, Method: m,
						MaxResidentFrames: w, Metrics: sink,
					})
					if err != nil {
						t.Fatalf("%s/%v sym=%v w=%d: %v", backing.name, m, sym, w, err)
					}
					if !matricesEqual(got, want, 0) {
						t.Fatalf("%s/%v sym=%v w=%d: streamed matrix != in-memory", backing.name, m, sym, w)
					}
					s := sink.Snapshot()
					pairs := int64(n*n) * 2 * frames * frames
					if sym {
						pairs = int64(n*(n-1)/2) * 2 * frames * frames
					}
					if total := s.PairsEvaluated + s.PairsPruned + s.PairsAbandoned; total != pairs {
						t.Fatalf("%s/%v sym=%v w=%d: counters sum %d, want %d", backing.name, m, sym, w, total, pairs)
					}
					bound := int64(2 * w)
					if w > frames {
						bound = 2 * frames
					}
					if s.PeakResidentFrames > bound {
						t.Fatalf("%s/%v sym=%v w=%d: peak resident %d frames exceeds %d", backing.name, m, sym, w, s.PeakResidentFrames, bound)
					}
					if s.BytesStreamed <= 0 {
						t.Fatalf("%s/%v sym=%v w=%d: no bytes accounted as streamed", backing.name, m, sym, w)
					}
				}
			}
		}
	}
}

// ComputeBlockRefs must reproduce ComputeBlock exactly for streamed
// windows, and a window that exceeds the trajectory must degrade to
// one whole-trajectory window.
func TestComputeBlockRefsStreamed(t *testing.T) {
	ens := testEnsemble(6, 5, 4)
	refs := traj.RefsOf(ens)
	for _, sym := range []bool{false, true} {
		blocks, err := Partition(len(ens), 3, sym)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			want := ComputeBlock(ens, b, Opts{Symmetric: sym, Method: hausdorff.Naive})
			got, err := ComputeBlockRefs(refs, b, Opts{Symmetric: sym, Method: hausdorff.Pruned, MaxResidentFrames: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Values) != len(want.Values) {
				t.Fatalf("block %+v: %d values, want %d", b, len(got.Values), len(want.Values))
			}
			for k := range got.Values {
				if got.Values[k] != want.Values[k] {
					t.Fatalf("block %+v value %d: %v != %v", b, k, got.Values[k], want.Values[k])
				}
			}
		}
	}
}

// A cancelled streamed block keeps the full declared shape with the
// unreached values zero.
func TestComputeBlockRefsStreamedCancel(t *testing.T) {
	ens := testEnsemble(4, 5, 6)
	refs := traj.RefsOf(ens)
	calls := 0
	opts := Opts{
		Symmetric: true, MaxResidentFrames: 2,
		Cancel: func() bool { calls++; return calls > 2 },
	}
	b := Block{I0: 0, I1: 4, J0: 0, J1: 4}
	got, err := ComputeBlockRefs(refs, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := b.TaskPairs(true); len(got.Values) != want {
		t.Fatalf("cancelled block has %d values, want %d", len(got.Values), want)
	}
	zeros := 0
	for _, v := range got.Values {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("cancelled block has no zero-filled tail")
	}
}

// Window-staged pilot inputs replay through the streamed kernel: the
// windowed pilot run must match the serial reference exactly, and a
// streamed run stages more, smaller blobs than a whole-file run.
func TestPilotStreamedStagesWindows(t *testing.T) {
	const n, atoms, frames, n1 = 4, 5, 6, 2
	ens := testEnsemble(n, atoms, frames)
	want, err := Serial(ens, Opts{Method: hausdorff.Naive})
	if err != nil {
		t.Fatal(err)
	}
	sink := &engine.Metrics{}
	got, err := RunPilot(testPilot(t), ens, n1, Opts{
		Symmetric: true, Method: hausdorff.Pruned,
		MaxResidentFrames: 2, Metrics: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want, 0) {
		t.Fatal("streamed pilot matrix != serial")
	}
	s := sink.Snapshot()
	if s.PeakResidentFrames == 0 || s.PeakResidentFrames > 4 {
		t.Fatalf("pilot streamed peak resident %d frames, want 1..4", s.PeakResidentFrames)
	}
	if s.BytesStreamed <= 0 {
		t.Fatal("pilot streamed run accounted no streamed bytes")
	}
}

// EncodeMDTWindow windows must round-trip: decoding every window in
// order reproduces the trajectory, whether the ref is memory- or
// file-backed.
func TestEncodeMDTWindowRoundTrip(t *testing.T) {
	ens := testEnsemble(1, 4, 7)
	src := ens[0]
	path := filepath.Join(t.TempDir(), "w.mdt")
	if err := traj.WriteMDTFile(path, src, 8); err != nil {
		t.Fatal(err)
	}
	fr, err := traj.FileRef(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []*traj.Ref{traj.MemRef(src), fr} {
		const w = 3
		var frames int
		for win := 0; win < ref.NumWindows(w); win++ {
			blob, err := ref.EncodeMDTWindow(win*w, w, 8)
			if err != nil {
				t.Fatal(err)
			}
			part, err := traj.DecodeMDT(blob)
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range part.Frames {
				wantF := src.Frames[win*w+i]
				if f.Time != wantF.Time {
					t.Fatalf("window %d frame %d: time %v != %v", win, i, f.Time, wantF.Time)
				}
				for a := range f.Coords {
					if f.Coords[a] != wantF.Coords[a] {
						t.Fatalf("window %d frame %d atom %d differs", win, i, a)
					}
				}
			}
			frames += part.NFrames()
		}
		if frames != src.NFrames() {
			t.Fatalf("windows cover %d frames, want %d", frames, src.NFrames())
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
