package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	// Sample std dev with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	m, s := MeanStd(xs)
	if m != 5 || math.Abs(s-want) > 1e-12 {
		t.Errorf("MeanStd = %v, %v", m, s)
	}
}

func TestMeanStdEdgeCases(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestSpeedup(t *testing.T) {
	got := Speedup(100, []float64{100, 50, 25, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Speedup = %v", got)
		}
	}
}

func TestEfficiency(t *testing.T) {
	eff, err := Efficiency(100, []float64{100, 50}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if eff[0] != 1 || eff[1] != 1 {
		t.Errorf("Efficiency = %v", eff)
	}
	if _, err := Efficiency(1, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestSpeedupNonNegativeQuick(t *testing.T) {
	f := func(base float64, times []float64) bool {
		base = math.Abs(base)
		for i := range times {
			times[i] = math.Abs(times[i])
		}
		for _, s := range Speedup(base, times) {
			if s < 0 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.001:  "1.00e-03",
		1.5:    "1.500",
		42.25:  "42.2",
		1234.5: "1234",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	if FormatRate(0) != "-" {
		t.Error("zero rate")
	}
	if FormatRate(3.456) != "3.46" {
		t.Errorf("got %q", FormatRate(3.456))
	}
	if FormatRate(123.4) != "123.4" {
		t.Errorf("got %q", FormatRate(123.4))
	}
	if FormatRate(50000) != "50000" {
		t.Errorf("got %q", FormatRate(50000))
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:              "512 B",
		2048:             "2.0 KiB",
		5 << 20:          "5.0 MiB",
		3 << 30:          "3.0 GiB",
		int64(7) << 40:   "7.0 TiB",
		int64(1536) << 0: "1.5 KiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasSuffix(FormatBytes(int64(2)<<50), "PiB") {
		t.Error("PiB formatting")
	}
}
