// Package stats provides the small statistical helpers the experiment
// harness uses: means, standard deviations (the paper reports means over
// multiple runs with standard-deviation error bars), and speedup /
// parallel-efficiency series.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanStd returns both statistics in one pass over the helpers.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Speedup returns base/t for each runtime t; zero runtimes yield 0.
func Speedup(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency returns speedup divided by the resource ratio for each
// point: Efficiency(t1, t_p, p) = t1/(p * t_p).
func Efficiency(base float64, times []float64, scales []float64) ([]float64, error) {
	if len(times) != len(scales) {
		return nil, fmt.Errorf("stats: %d times vs %d scales", len(times), len(scales))
	}
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 && scales[i] > 0 {
			out[i] = base / (t * scales[i])
		}
	}
	return out, nil
}

// FormatSeconds renders a duration in seconds with sensible precision
// for tables (3 significant figures).
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 0.01:
		return fmt.Sprintf("%.2e", s)
	case s < 10:
		return fmt.Sprintf("%.3f", s)
	case s < 1000:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.0f", s)
	}
}

// FormatRate renders tasks/second for tables.
func FormatRate(r float64) string {
	switch {
	case r == 0:
		return "-"
	case r < 10:
		return fmt.Sprintf("%.2f", r)
	case r < 1000:
		return fmt.Sprintf("%.1f", r)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
