package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdtask_test_total", "A counter.", "engine", "fleet").Add(3)
	r.GaugeFunc("mdtask_test_gauge", "A gauge.", func() float64 { return 1.5 })
	h := r.Histogram("mdtask_test_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	out := expose(t, r)
	for _, want := range []string{
		"# HELP mdtask_test_total A counter.",
		"# TYPE mdtask_test_total counter",
		`mdtask_test_total{engine="fleet"} 3`,
		"# TYPE mdtask_test_gauge gauge",
		"mdtask_test_gauge 1.5",
		"# TYPE mdtask_test_seconds histogram",
		`mdtask_test_seconds_bucket{le="0.1"} 1`,
		`mdtask_test_seconds_bucket{le="1"} 2`,
		`mdtask_test_seconds_bucket{le="+Inf"} 3`,
		"mdtask_test_seconds_sum 5.55",
		"mdtask_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families are sorted by name.
	gi := strings.Index(out, "mdtask_test_gauge")
	hi := strings.Index(out, "mdtask_test_seconds")
	ci := strings.Index(out, "mdtask_test_total")
	if !(gi < hi && hi < ci) {
		t.Error("families are not sorted by name")
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 1.6, 2.5, 9} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 3`,
		`h_seconds_bucket{le="3"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "path", "a\"b\\c\nd").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `c_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "k", "v")
	b := r.Counter("x_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "", "k", "other")
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	if ha, hb := r.Histogram("h", "", nil), r.Histogram("h", "", nil); ha != hb {
		t.Fatal("same histogram name returned distinct instruments")
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a histogram did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "")
	r.Histogram("x_total", "", nil)
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestBuildInfoAndRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterBuildInfo(r, "testsvc")
	out := expose(t, r)
	for _, want := range []string{"go_goroutines", "mdtask_build_info", `service="testsvc"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if Version() == "" {
		t.Error("Version() is empty")
	}
}
