package obs

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTraceParentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		var c SpanContext
		rng.Read(c.Trace[:])
		rng.Read(c.Span[:])
		if !c.Valid() {
			continue // all-zero draw, vanishingly unlikely
		}
		parsed, ok := ParseTraceParent(c.TraceParent())
		if !ok {
			t.Fatalf("round trip rejected %q", c.TraceParent())
		}
		if parsed != c {
			t.Fatalf("round trip mangled %v into %v", c, parsed)
		}
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-00f067aa0ba902b7-01", // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted invalid input", s)
		}
	}
}

func TestNilTracerIsFullyInert(t *testing.T) {
	var tr *Tracer
	span := tr.StartRoot("x")
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.End()
	child := tr.StartChild(span.Context(), "y")
	child.End()
	tr.Import([]WireSpan{{Trace: "00000000000000000000000000000001"}})
	if s, d := tr.Spans(TraceID{1}); s != nil || d != 0 {
		t.Fatal("nil tracer returned spans")
	}
	if tr.Take(TraceID{1}) != nil || tr.TraceCount() != 0 || tr.Enabled() {
		t.Fatal("nil tracer is not inert")
	}
}

func TestSpanRecordingAndNesting(t *testing.T) {
	tr := NewTracer("test")
	root := tr.StartRoot("job")
	child := tr.StartChild(root.Context(), "run")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child left the parent's trace")
	}
	child.SetAttr("k", "v")
	child.End()
	child.End() // idempotent
	root.End()
	spans, dropped := tr.Spans(root.Context().Trace)
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("got %d spans (%d dropped), want 2 (0)", len(spans), dropped)
	}
	// Sorted by start: root began first.
	if spans[0].Name != "job" || spans[1].Name != "run" {
		t.Fatalf("unexpected order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != root.Context().Span.String() {
		t.Fatalf("child parent = %q, want %q", spans[1].Parent, root.Context().Span.String())
	}
	if spans[1].Attrs["k"] != "v" {
		t.Fatal("attribute lost")
	}
}

func TestStartChildWithInvalidParentStartsFreshTrace(t *testing.T) {
	tr := NewTracer("test")
	s := tr.StartChild(SpanContext{}, "orphan")
	if !s.Context().Valid() {
		t.Fatal("orphan span has no identity")
	}
	s.End()
	if spans, _ := tr.Spans(s.Context().Trace); len(spans) != 1 || spans[0].Parent != "" {
		t.Fatal("orphan did not become a root span")
	}
}

func TestPerTraceSpanCapCountsDropped(t *testing.T) {
	tr := NewTracer("test")
	tr.maxSpans = 4
	root := tr.StartRoot("r")
	for i := 0; i < 10; i++ {
		tr.StartChild(root.Context(), fmt.Sprintf("c%d", i)).End()
	}
	spans, dropped := tr.Spans(root.Context().Trace)
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("got %d spans, %d dropped; want 4 and 6", len(spans), dropped)
	}
}

func TestTraceLRUEviction(t *testing.T) {
	tr := NewTracer("test")
	tr.maxTraces = 3
	var first TraceID
	for i := 0; i < 5; i++ {
		s := tr.StartRoot("r")
		if i == 0 {
			first = s.Context().Trace
		}
		s.End()
	}
	if tr.TraceCount() != 3 {
		t.Fatalf("trace count %d, want 3", tr.TraceCount())
	}
	if spans, _ := tr.Spans(first); spans != nil {
		t.Fatal("oldest trace survived eviction")
	}
}

func TestTakeRemovesTrace(t *testing.T) {
	tr := NewTracer("worker")
	s := tr.StartRoot("kernel")
	s.End()
	trace := s.Context().Trace
	taken := tr.Take(trace)
	if len(taken) != 1 {
		t.Fatalf("Take returned %d spans, want 1", len(taken))
	}
	if got, _ := tr.Spans(trace); got != nil {
		t.Fatal("trace still present after Take")
	}
	if tr.Take(trace) != nil {
		t.Fatal("second Take returned spans")
	}
}

func TestImportCrossProcessSpans(t *testing.T) {
	worker := NewTracer("mdworker")
	coord := NewTracer("mdserver")

	// Coordinator-side lease span, propagated as traceparent.
	lease := coord.StartRoot("fleet.lease")
	parent, ok := ParseTraceParent(lease.Context().TraceParent())
	if !ok {
		t.Fatal("lease context did not serialize")
	}
	// Worker-side kernel span under it, shipped back and imported.
	kernel := worker.StartChild(parent, "worker.kernel")
	kernel.End()
	coord.Import(worker.Take(kernel.Context().Trace))
	lease.End()

	spans, _ := coord.Spans(lease.Context().Trace)
	if len(spans) != 2 {
		t.Fatalf("imported trace has %d spans, want 2", len(spans))
	}
	procs := map[string]bool{}
	for _, ws := range spans {
		procs[ws.Proc] = true
		if ws.Trace != lease.Context().Trace.String() {
			t.Fatalf("span %q escaped the trace", ws.Name)
		}
	}
	if !procs["mdserver"] || !procs["mdworker"] {
		t.Fatalf("trace does not span both processes: %v", procs)
	}
}

func TestImportSkipsInvalidTraceIDs(t *testing.T) {
	tr := NewTracer("test")
	tr.Import([]WireSpan{{Trace: "not-hex", Name: "x"}, {Trace: "", Name: "y"}})
	if tr.TraceCount() != 0 {
		t.Fatal("invalid trace ids were imported")
	}
}
