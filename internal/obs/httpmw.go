package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// statusRecorder captures the response status for logging/metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// NormalizePath collapses identifier path segments to {id} so metric
// label cardinality stays bounded: segments that are job/fleet-job/
// worker/lease ids (job-, fj-, w-, l- prefixes) or purely numeric.
// CI runs Go 1.22, which predates http.Request.Pattern, hence the
// manual normalizer.
func NormalizePath(p string) string {
	segs := strings.Split(p, "/")
	changed := false
	for i, s := range segs {
		if isIDSegment(s) {
			segs[i] = "{id}"
			changed = true
		}
	}
	if !changed {
		return p
	}
	return strings.Join(segs, "/")
}

func isIDSegment(s string) bool {
	if s == "" {
		return false
	}
	for _, pfx := range [...]string{"job-", "fj-", "w-", "l-"} {
		if strings.HasPrefix(s, pfx) && len(s) > len(pfx) {
			return true
		}
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Middleware wraps an HTTP handler with the standard server-side
// instrumentation: a per-endpoint latency histogram and request
// counter, a structured access log line, and — when the request
// carries a W3C traceparent header — an http.server span continuing
// the inbound trace. Requests without a traceparent get metrics and a
// log line but no span: the job timeline's root spans are opened by
// the scheduler, and minting a fresh trace per unrelated request would
// churn the tracer's bounded trace buffer.
func Middleware(next http.Handler, o *Obs, log *slog.Logger, service string) http.Handler {
	if o == nil {
		o = NoTrace()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}

		var span *Span
		traceID := ""
		if parent, ok := ParseTraceParent(r.Header.Get("traceparent")); ok {
			traceID = parent.Trace.String()
			span = o.Tracer.StartChild(parent, "http.server "+r.Method+" "+NormalizePath(r.URL.Path))
			span.SetAttr("http.path", r.URL.Path)
		}

		next.ServeHTTP(rec, r)

		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		path := NormalizePath(r.URL.Path)
		o.Metrics.Histogram("mdtask_http_request_duration_seconds",
			"HTTP server request latency by endpoint.", nil,
			"service", service, "method", r.Method, "path", path,
		).Observe(elapsed.Seconds())
		o.Metrics.Counter("mdtask_http_requests_total",
			"HTTP server requests by endpoint and status code.",
			"service", service, "method", r.Method, "path", path,
			"code", strconv.Itoa(rec.status),
		).Inc()

		if span != nil {
			span.SetAttrInt("http.status", int64(rec.status))
			span.End()
		}
		if log != nil {
			attrs := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("dur", elapsed),
			}
			if traceID != "" {
				attrs = append(attrs, slog.String("trace_id", traceID))
			}
			log.LogAttrs(r.Context(), slog.LevelInfo, "http",
				toSlogAttrs(attrs)...)
		}
	})
}

func toSlogAttrs(in []any) []slog.Attr {
	out := make([]slog.Attr, 0, len(in))
	for _, a := range in {
		if sa, ok := a.(slog.Attr); ok {
			out = append(out, sa)
		}
	}
	return out
}

// NewLogger builds the process logger for the -log-format flag:
// "json" for machine-readable lines, anything else for text.
func NewLogger(w interface{ Write([]byte) (int, error) }, format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}
