package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"/v1/jobs":                  "/v1/jobs",
		"/v1/jobs/job-000042":       "/v1/jobs/{id}",
		"/v1/jobs/job-000042/trace": "/v1/jobs/{id}/trace",
		"/v1/workers/w-7/lease":     "/v1/workers/{id}/lease",
		"/v1/fleet/jobs/fj-3/input": "/v1/fleet/jobs/{id}/input",
		"/v1/things/123":            "/v1/things/{id}",
		"/metrics":                  "/metrics",
		"/healthz":                  "/healthz",
	}
	for in, want := range cases {
		if got := NormalizePath(in); got != want {
			t.Errorf("NormalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMiddlewareMetricsAndSpans(t *testing.T) {
	o := New("testsvc")
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}), o, nil, "testsvc")

	// Plain request: metrics, no span (no inbound traceparent).
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", nil))
	if o.Tracer.TraceCount() != 0 {
		t.Fatal("request without traceparent minted a trace")
	}

	// Request continuing a trace: span lands in that trace.
	parentSpan := o.Tracer.StartRoot("client")
	req := httptest.NewRequest("POST", "/v1/workers/w-1/results", nil)
	req.Header.Set("traceparent", parentSpan.Context().TraceParent())
	h.ServeHTTP(httptest.NewRecorder(), req)
	spans, _ := o.Tracer.Spans(parentSpan.Context().Trace)
	if len(spans) != 1 {
		t.Fatalf("inbound traceparent produced %d spans, want 1", len(spans))
	}
	ws := spans[0]
	if ws.Name != "http.server POST /v1/workers/{id}/results" {
		t.Errorf("span name %q", ws.Name)
	}
	if ws.Parent != parentSpan.Context().Span.String() {
		t.Error("server span not parented under the inbound context")
	}
	if ws.Attrs["http.status"] != "202" {
		t.Errorf("status attr %q, want 202", ws.Attrs["http.status"])
	}

	var b strings.Builder
	if err := o.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mdtask_http_requests_total{service="testsvc",method="POST",path="/v1/jobs",code="202"} 1`,
		`mdtask_http_request_duration_seconds_count{service="testsvc",method="POST",path="/v1/jobs"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestMiddlewareLogsTraceID(t *testing.T) {
	o := New("svc")
	var buf strings.Builder
	logger := NewLogger(&buf, "json")
	h := Middleware(http.NotFoundHandler(), o, logger, "svc")

	root := o.Tracer.StartRoot("client")
	req := httptest.NewRequest("GET", "/v1/fleet", nil)
	req.Header.Set("traceparent", root.Context().TraceParent())
	h.ServeHTTP(httptest.NewRecorder(), req)

	line := buf.String()
	if !strings.Contains(line, `"trace_id":"`+root.Context().Trace.String()+`"`) {
		t.Fatalf("log line missing trace id: %s", line)
	}
	if !strings.Contains(line, `"status":404`) {
		t.Fatalf("log line missing status: %s", line)
	}
}

func TestMiddlewareNilObs(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil, nil, "svc")
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil)) // must not panic
}
