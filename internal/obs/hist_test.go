package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// referenceBucket is the O(n) specification bucketOf must match:
// the first bucket whose inclusive upper bound admits v.
func referenceBucket(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

func TestBucketBoundariesExactAndAdjacent(t *testing.T) {
	h := NewHistogram(nil)
	for i, b := range DefBuckets {
		// A value exactly on a bound lands in that bucket (le-semantics)…
		if got := h.bucketOf(b); got != i {
			t.Errorf("bucketOf(%g) = %d, want %d (bounds are inclusive)", b, got, i)
		}
		// …and the next representable value above it lands one bucket up.
		above := math.Nextafter(b, math.Inf(1))
		if got := h.bucketOf(above); got != i+1 {
			t.Errorf("bucketOf(%g) = %d, want %d", above, got, i+1)
		}
	}
	if got := h.bucketOf(math.Inf(1)); got != len(DefBuckets) {
		t.Errorf("bucketOf(+Inf) = %d, want the overflow bucket %d", got, len(DefBuckets))
	}
}

func TestBucketOfMatchesReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram(nil)
	for i := 0; i < 10000; i++ {
		// Log-uniform over (~1e-5, ~1e3) to hit every bucket region.
		v := math.Exp(rng.Float64()*18 - 11)
		if got, want := h.bucketOf(v), referenceBucket(DefBuckets, v); got != want {
			t.Fatalf("bucketOf(%g) = %d, reference says %d", v, got, want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	const goroutines, perG = 16, 2000
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				// 0.25 is exactly representable, so the expected sum below
				// is float-exact even across interleaved CAS updates.
				h.Observe(0.25)
				_ = rng
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("lost observations under concurrency: count %d, want %d", s.Count, goroutines*perG)
	}
	if want := 0.25 * goroutines * perG; s.Sum != want {
		t.Fatalf("sum %g, want %g", s.Sum, want)
	}
	var inBuckets int64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket counts sum to %d, count says %d", inBuckets, s.Count)
	}
}

// randomHist builds a histogram with integral observations (so Sum
// arithmetic is float-exact and merging is order-independent).
func randomHist(rng *rand.Rand, n int) *Histogram {
	h := NewHistogram(nil)
	for i := 0; i < n; i++ {
		h.Observe(float64(rng.Intn(128)))
	}
	return h
}

func histEqual(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

func TestMergeAssociativityProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		mk := func() (*Histogram, *Histogram, *Histogram) {
			return randomHist(rng, rng.Intn(200)), randomHist(rng, rng.Intn(200)), randomHist(rng, rng.Intn(200))
		}
		a1, b1, c1 := mk()
		rng = rand.New(rand.NewSource(int64(trial)))
		a2, b2, c2 := mk()

		// (a ⊕ b) ⊕ c
		left := NewHistogram(nil)
		left.Merge(a1)
		left.Merge(b1)
		left.Merge(c1)
		// a ⊕ (b ⊕ c)
		bc := NewHistogram(nil)
		bc.Merge(b2)
		bc.Merge(c2)
		right := NewHistogram(nil)
		right.Merge(a2)
		right.Merge(bc)

		if !histEqual(left.Snapshot(), right.Snapshot()) {
			t.Fatalf("trial %d: merge is not associative:\n(a⊕b)⊕c = %+v\na⊕(b⊕c) = %+v",
				trial, left.Snapshot(), right.Snapshot())
		}
	}
}

func TestMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bucket layouts did not panic")
		}
	}()
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2})
	b.Observe(1)
	a.Merge(b)
}

func TestQuantileMonotonicityProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		h := NewHistogram(nil)
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(math.Exp(rng.Float64()*18 - 11))
		}
		s := h.Snapshot()
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantile not monotone: q=%.2f gives %g after %g", trial, q, v, prev)
			}
			if v < 0 || v > DefBuckets[len(DefBuckets)-1] {
				t.Fatalf("trial %d: quantile %g escapes [0, largest bound]", trial, v)
			}
			prev = v
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}
	if got := NewHistogram(nil).Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h := NewHistogram(nil)
	h.Observe(1e9) // +Inf bucket only
	if got, want := h.Quantile(0.5), DefBuckets[len(DefBuckets)-1]; got != want {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to %g", got, want)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
