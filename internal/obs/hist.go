package obs

import (
	"math"
	"sync/atomic"
)

// DefBuckets are the default latency bucket upper bounds in seconds:
// exponential from 500µs to 60s, sized for the spread between a cache
// hit (~µs), a block kernel (ms–s), and a whole fleet job (s–min).
// The terminal +Inf bucket is implicit.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram safe for lock-free concurrent
// Observe. Bucket i counts observations v <= bounds[i] (cumulative
// counts are computed at snapshot time, not stored); the last bucket
// is the implicit +Inf. A nil *Histogram no-ops, so optional
// instrumentation hooks cost one nil check when unset.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds (nil: DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucketOf returns the index of the bucket v falls in: the first
// bucket whose upper bound is >= v (bounds are inclusive upper
// limits, matching Prometheus `le`).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is Counts[len(Bounds)]
	Counts []int64   // per-bucket (non-cumulative) counts
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may land between the per-bucket reads — totals are re-derived from
// the buckets so the snapshot is always internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge folds other's observations into h. The bucket layouts must
// match (histograms merged across jobs or processes are created from
// the same bounds); mismatched layouts panic.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	h.MergeSnapshot(other.Snapshot())
}

// MergeSnapshot folds an exported snapshot into h (the cross-process
// form: workers ship snapshots, the coordinator merges them).
func (h *Histogram) MergeSnapshot(s HistSnapshot) {
	if h == nil || s.Count == 0 && s.Sum == 0 {
		return
	}
	if len(s.Counts) != len(h.counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range s.Counts {
		if s.Counts[i] != 0 {
			h.counts[i].Add(s.Counts[i])
		}
	}
	h.count.Add(s.Count)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s.Sum)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket the rank falls in, the same
// estimate Prometheus's histogram_quantile computes. The +Inf
// bucket clamps to the largest finite bound; an empty histogram
// returns 0. Estimates are monotone in q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Quantile is Histogram.Quantile over a snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(s.Bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			// Position of the rank inside this bucket.
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
