package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one trace (one job's timeline) — 16 bytes, shared
// by every span of the trace, on every process that touched it.
type TraceID [16]byte

// SpanID identifies one span within a trace — 8 bytes.
type SpanID [8]byte

// String returns the id as lowercase hex (the W3C wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the id as lowercase hex (the W3C wire form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// ParseTraceID decodes a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanContext is the propagated identity of a span: enough to parent
// remote children under it and land them in the same trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a usable identity.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// TraceParent renders the context as a W3C traceparent header value:
// version 00, sampled flag set.
func (c SpanContext) TraceParent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceParent decodes a W3C traceparent header value, accepting
// any version and flags but requiring non-zero trace and span ids.
func ParseTraceParent(s string) (SpanContext, bool) {
	// version(2)-traceid(32)-spanid(16)-flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var c SpanContext
	if _, err := hex.Decode(c.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// WireSpan is a finished span in its exported (JSON-friendly) form —
// the unit of cross-process span transport: fleet workers ship their
// kernel spans back to the coordinator as WireSpans inside the unit
// result, and the Chrome trace exporter consumes them.
type WireSpan struct {
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Proc   string            `json:"proc"`
	Start  int64             `json:"start_unix_ns"`
	Dur    int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Tracer creates spans and buffers the finished ones per trace, with
// both the trace count and the spans retained per trace bounded (the
// oldest-touched trace and the latest spans beyond the cap are
// dropped), so tracing on a long-running server holds steady memory.
//
// A nil *Tracer is the disabled tracer: every method no-ops and every
// started span is nil (whose methods also no-op).
type Tracer struct {
	proc string

	mu        sync.Mutex
	idState   [2]uint64 // xorshift128+ state for span/trace ids
	traces    map[TraceID]*traceBuf
	order     []TraceID // LRU, most recently touched last
	maxTraces int
	maxSpans  int
}

type traceBuf struct {
	spans   []WireSpan
	dropped int
}

// Bounds of the default tracer: traces retained and spans per trace.
const (
	defaultMaxTraces        = 256
	defaultMaxSpansPerTrace = 8192
)

// NewTracer returns an enabled tracer stamping spans with the given
// process name.
func NewTracer(proc string) *Tracer {
	t := &Tracer{
		proc:      proc,
		traces:    make(map[TraceID]*traceBuf),
		maxTraces: defaultMaxTraces,
		maxSpans:  defaultMaxSpansPerTrace,
	}
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.idState[0] = binary.LittleEndian.Uint64(seed[0:])
		t.idState[1] = binary.LittleEndian.Uint64(seed[8:])
	}
	if t.idState[0] == 0 && t.idState[1] == 0 {
		t.idState[0] = uint64(time.Now().UnixNano()) | 1
		t.idState[1] = 0x9e3779b97f4a7c15
	}
	return t
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID draws the next pseudo-random non-zero 64-bit id. Callers
// hold t.mu.
func (t *Tracer) nextIDLocked() uint64 {
	for {
		// xorshift128+ — fast, and seeded from crypto/rand so two
		// processes never collide in practice.
		x, y := t.idState[0], t.idState[1]
		x ^= x << 23
		x ^= x >> 17
		x ^= y ^ (y >> 26)
		t.idState[0], t.idState[1] = y, x
		if v := x + y; v != 0 {
			return v
		}
	}
}

func (t *Tracer) newSpanID() SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s SpanID
	binary.BigEndian.PutUint64(s[:], t.nextIDLocked())
	return s
}

func (t *Tracer) newTraceID() TraceID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextIDLocked())
	binary.BigEndian.PutUint64(id[8:], t.nextIDLocked())
	return id
}

// Span is one in-progress operation. End records it into the tracer;
// a nil *Span (from a disabled tracer) no-ops everywhere.
type Span struct {
	t      *Tracer
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	ended  bool
}

// StartRoot begins a span in a fresh trace.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:     t,
		ctx:   SpanContext{Trace: t.newTraceID(), Span: t.newSpanID()},
		name:  name,
		start: time.Now(),
	}
}

// StartChild begins a span under parent. An invalid parent starts a
// fresh trace instead, so callers never need to special-case a
// missing inbound context.
func (t *Tracer) StartChild(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return &Span{
		t:      t,
		ctx:    SpanContext{Trace: parent.Trace, Span: t.newSpanID()},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
	}
}

// Context returns the span's propagable identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetAttr attaches a key/value attribute, visible in the exported
// trace's args.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End finishes the span and records it into its tracer. Ending twice
// records once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	ws := WireSpan{
		Trace: s.ctx.Trace.String(),
		Span:  s.ctx.Span.String(),
		Name:  s.name,
		Proc:  s.t.proc,
		Start: s.start.UnixNano(),
		Dur:   end.Sub(s.start).Nanoseconds(),
		Attrs: attrs,
	}
	if !s.parent.IsZero() {
		ws.Parent = s.parent.String()
	}
	s.t.record(s.ctx.Trace, ws)
}

// record appends one finished span to its trace buffer, enforcing the
// per-trace span cap and the trace-count LRU.
func (t *Tracer) record(trace TraceID, ws WireSpan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[trace]
	if !ok {
		buf = &traceBuf{}
		t.traces[trace] = buf
		t.order = append(t.order, trace)
		if len(t.order) > t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
	} else {
		t.touchLocked(trace)
	}
	if len(buf.spans) >= t.maxSpans {
		buf.dropped++
		return
	}
	buf.spans = append(buf.spans, ws)
}

// touchLocked moves a trace to the most-recently-used end.
func (t *Tracer) touchLocked(trace TraceID) {
	for i, id := range t.order {
		if id == trace {
			t.order = append(append(t.order[:i:i], t.order[i+1:]...), trace)
			return
		}
	}
}

// Import records already-finished spans (e.g. shipped back from a
// fleet worker) into their traces.
func (t *Tracer) Import(spans []WireSpan) {
	if t == nil {
		return
	}
	for _, ws := range spans {
		trace, ok := ParseTraceID(ws.Trace)
		if !ok {
			continue
		}
		t.record(trace, ws)
	}
}

// Spans returns a copy of the finished spans of one trace, sorted by
// start time, plus how many were dropped by the per-trace cap.
func (t *Tracer) Spans(trace TraceID) (spans []WireSpan, dropped int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[trace]
	if !ok {
		return nil, 0
	}
	out := make([]WireSpan, len(buf.spans))
	copy(out, buf.spans)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, buf.dropped
}

// Take removes and returns the finished spans of one trace — the
// worker-side handoff: spans accumulated while executing a unit are
// taken and shipped with the result, leaving nothing behind.
func (t *Tracer) Take(trace TraceID) []WireSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[trace]
	if !ok {
		return nil
	}
	delete(t.traces, trace)
	for i, id := range t.order {
		if id == trace {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	return buf.spans
}

// TraceCount returns the number of traces currently buffered.
func (t *Tracer) TraceCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// ManualSpan builds an already-finished WireSpan without a tracer —
// for callers that time an operation themselves and only need the
// record (ids are drawn from t, which must be non-nil).
func (t *Tracer) ManualSpan(parent SpanContext, name string, start time.Time, dur time.Duration, attrs map[string]string) WireSpan {
	ws := WireSpan{
		Span:  t.newSpanID().String(),
		Name:  name,
		Proc:  t.proc,
		Start: start.UnixNano(),
		Dur:   dur.Nanoseconds(),
		Attrs: attrs,
	}
	if parent.Valid() {
		ws.Trace = parent.Trace.String()
		ws.Parent = parent.Span.String()
	} else {
		ws.Trace = t.newTraceID().String()
	}
	return ws
}

// String renders a context for logs: "trace/span".
func (c SpanContext) String() string {
	return fmt.Sprintf("%s/%s", c.Trace.String(), c.Span.String())
}
