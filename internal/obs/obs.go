// Package obs is the stdlib-only observability layer of the
// repository: lightweight distributed tracing, fixed-bucket latency
// histograms, and a Prometheus text-format metrics registry, threaded
// through the jobs scheduler, every engine driver, the block store,
// and the fleet's coordinator/worker HTTP protocol.
//
// # Spans
//
// A Tracer creates nested spans forming the timeline of one job:
//
//	job → queue.wait → run → engine.<name> → psa.block → cache.do
//	                        ↘ fleet.job → fleet.lease → worker.kernel
//
// Span identity follows the W3C Trace Context model: a 16-byte trace
// id shared by every span of one job and an 8-byte span id per span.
// The fleet propagates identities across its HTTP hops in the
// standard `traceparent` header form, so a work unit executed by a
// separate mdworker process — or SIGKILL-requeued and retried by
// another — still lands in the submitting job's trace, visibly
// parented under its lease. Finished traces export as Chrome
// trace_event JSON (GET /v1/jobs/{id}/trace), loadable directly in
// chrome://tracing or Perfetto.
//
// All tracing types are nil-safe: a nil *Tracer hands out nil *Spans
// whose methods no-op, so disabling tracing removes every cost except
// a nil check on the hot path.
//
// # Metrics
//
// A Registry holds counters, gauges (value callbacks), and fixed
// exponential-bucket histograms with per-series labels, and writes
// the Prometheus text exposition format (GET /metrics). Histograms
// support lock-free concurrent Observe, exact Merge, and
// p50/p95/p99-style quantile estimation by linear interpolation.
package obs

// Obs bundles the observability handles of one process: its tracer
// and its metrics registry. Components share one Obs so spans from
// every layer land in the same trace buffer and every metric series
// is served by the same /metrics endpoint.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns an Obs with an enabled tracer (bounded buffers) and an
// empty registry. proc names the process in exported spans
// ("mdserver", "mdworker", ...).
func New(proc string) *Obs {
	return &Obs{Tracer: NewTracer(proc), Metrics: NewRegistry()}
}

// NoTrace returns an Obs whose tracer is disabled (nil): metrics
// still register and expose, spans cost a nil check and nothing else.
func NoTrace() *Obs {
	return &Obs{Tracer: nil, Metrics: NewRegistry()}
}
