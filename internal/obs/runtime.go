package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntimeMetrics registers Go runtime health gauges
// (goroutines, heap, GC) on the registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.GaugeFunc("go_memstats_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapSys)
		})
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
}

// RegisterBuildInfo registers the conventional build_info gauge: value
// 1 with the build identity as labels, so dashboards can join any
// series against the running version.
func RegisterBuildInfo(r *Registry, service string) {
	if r == nil {
		return
	}
	r.GaugeFunc("mdtask_build_info",
		"Build information of the running binary (value is always 1).",
		func() float64 { return 1 },
		"service", service,
		"go_version", runtime.Version(),
		"revision", buildRevision())
}

// Version returns a human-readable build identity for -version flags:
// module version plus VCS revision when stamped by the toolchain.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (built without module support)"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	if rev := buildRevision(); rev != "unknown" {
		v += " (" + rev + ")"
	}
	return v + " " + runtime.Version()
}

// buildRevision returns the VCS revision the binary was built from,
// with a "-dirty" suffix for modified trees, or "unknown".
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
