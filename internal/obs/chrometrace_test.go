package obs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// decodeChrome re-parses an export (the same check a viewer does).
func decodeChrome(t *testing.T, b []byte) chromeFile {
	t.Helper()
	var f chromeFile
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return f
}

func TestChromeTraceExport(t *testing.T) {
	spans := []WireSpan{
		{Trace: "0102", Span: "aa", Name: "job", Proc: "mdserver", Start: 1000, Dur: 9000,
			Attrs: map[string]string{"engine": "fleet"}},
		{Trace: "0102", Span: "bb", Parent: "aa", Name: "run", Proc: "mdserver", Start: 2000, Dur: 7000},
		{Trace: "0102", Span: "cc", Parent: "bb", Name: "worker.kernel", Proc: "mdworker", Start: 3000, Dur: 4000},
	}
	f := decodeChrome(t, ChromeTrace(spans))
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", f.DisplayTimeUnit)
	}
	var meta, complete int
	procNames := map[string]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			procNames[ev.Args["name"].(string)] = true
		case "X":
			complete++
			if ev.Args["trace_id"] != "0102" {
				t.Errorf("event %q lost its trace id args", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || !procNames["mdserver"] || !procNames["mdworker"] {
		t.Fatalf("want one process_name metadata event per process, got %d (%v)", meta, procNames)
	}
	if complete != 3 {
		t.Fatalf("want 3 X events, got %d", complete)
	}
	// Timestamps convert ns → µs.
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "job" {
			if ev.Ts != 1.0 || ev.Dur != 9.0 {
				t.Fatalf("job event ts/dur = %g/%g µs, want 1/9", ev.Ts, ev.Dur)
			}
			if ev.Args["engine"] != "fleet" {
				t.Fatal("span attrs dropped from args")
			}
		}
	}
}

// TestChromeTraceLaneInvariant is the property the viewers depend on:
// within one (pid, tid) lane, any two slices are either disjoint in
// time or properly nested — never partially overlapping.
func TestChromeTraceLaneInvariant(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var spans []WireSpan
		n := 2 + rng.Intn(60)
		for i := 0; i < n; i++ {
			start := int64(rng.Intn(10000))
			spans = append(spans, WireSpan{
				Trace: "t", Span: "s", Name: "op", Proc: "p",
				Start: start, Dur: int64(1 + rng.Intn(5000)),
			})
		}
		f := decodeChrome(t, ChromeTrace(spans))
		type slice struct{ start, end float64 }
		lanes := map[int][]slice{}
		for _, ev := range f.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			lanes[ev.Tid] = append(lanes[ev.Tid], slice{ev.Ts, ev.Ts + ev.Dur})
		}
		for tid, sl := range lanes {
			for i := 0; i < len(sl); i++ {
				for j := i + 1; j < len(sl); j++ {
					a, b := sl[i], sl[j]
					disjoint := a.end <= b.start || b.end <= a.start
					nested := (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end)
					if !disjoint && !nested {
						t.Fatalf("trial %d: lane %d has partially overlapping slices [%g,%g) and [%g,%g)",
							trial, tid, a.start, a.end, b.start, b.end)
					}
				}
			}
		}
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	f := decodeChrome(t, ChromeTrace(nil))
	if len(f.TraceEvents) != 0 {
		t.Fatalf("empty input produced %d events", len(f.TraceEvents))
	}
}
