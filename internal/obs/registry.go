package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil
// *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a metric family.
type series struct {
	labels  string // rendered `{k="v",...}` or ""
	counter *Counter
	valueFn func() float64
	hist    *Histogram
}

// family is one named metric with its labeled series.
type family struct {
	name, help, kind string
	series           map[string]*series
	order            []string
}

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. All methods are safe for
// concurrent use; registering an existing name+labels pair returns
// the existing instrument (get-or-create), registering a name under a
// conflicting kind panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyOf returns (creating if needed) the family for name, checking
// kind consistency. Callers hold r.mu.
func (r *Registry) familyOf(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// seriesOf returns (creating if needed) the labeled series. Callers
// hold r.mu.
func (f *family) seriesOf(labels []string) (*series, bool) {
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s, !ok
}

// Counter registers (or returns) a counter. labels are alternating
// name/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.familyOf(name, help, kindCounter).seriesOf(labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (for counters another component already maintains).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyOf(name, help, kindCounter).seriesOf(labels)
	s.valueFn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyOf(name, help, kindGauge).seriesOf(labels)
	s.valueFn = fn
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (nil: DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.familyOf(name, help, kindHistogram).seriesOf(labels)
	if fresh {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// renderLabels turns alternating name/value pairs into the exposition
// label block, escaping values per the text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating name/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// withExtraLabel splices one more label pair into an already rendered
// label block (used for histogram `le`).
func withExtraLabel(rendered, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// formatFloat renders a sample value.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; instrument
	// reads below are already atomic.
	type row struct {
		fam    *family
		series []*series
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		sl := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			sl = append(sl, f.series[key])
		}
		rows = append(rows, row{fam: f, series: sl})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, rw := range rows {
		f := rw.fam
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range rw.series {
			switch {
			case f.kind == kindHistogram && s.hist != nil:
				snap := s.hist.Snapshot()
				var cum int64
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						withExtraLabel(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += snap.Counts[len(snap.Bounds)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					withExtraLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, cum)
			case s.valueFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.valueFn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at GET /metrics in the Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
