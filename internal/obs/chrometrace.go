package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// chrome://tracing and Perfetto load). Spans export as "X" (complete)
// events; process and lane names as "M" (metadata) events.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace_event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders finished spans as Chrome trace_event JSON. Each
// distinct span Proc becomes one process row; within a process, spans
// are packed onto the fewest lanes (threads) such that every lane's
// spans are either disjoint in time or properly nested, which is what
// the viewers require to stack slices. Span identity and attributes
// travel in args, so traces remain machine-checkable after export.
func ChromeTrace(spans []WireSpan) []byte {
	// Deterministic process numbering: sorted proc names.
	procs := make(map[string]int)
	var procNames []string
	for _, ws := range spans {
		if _, ok := procs[ws.Proc]; !ok {
			procs[ws.Proc] = 0
			procNames = append(procNames, ws.Proc)
		}
	}
	sort.Strings(procNames)
	for i, name := range procNames {
		procs[name] = i + 1
	}

	var events []chromeEvent
	for _, name := range procNames {
		pid := procs[name]
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}

	// Per process: sort by start (longer spans first on ties, so a
	// parent precedes the children sharing its start instant), then
	// greedily assign lanes that keep slices nested-or-disjoint.
	byProc := make(map[string][]WireSpan)
	for _, ws := range spans {
		byProc[ws.Proc] = append(byProc[ws.Proc], ws)
	}
	for _, name := range procNames {
		pid := procs[name]
		ps := byProc[name]
		sort.SliceStable(ps, func(i, j int) bool {
			if ps[i].Start != ps[j].Start {
				return ps[i].Start < ps[j].Start
			}
			return ps[i].Dur > ps[j].Dur
		})
		// lanes[i] is a stack of open end times on lane i.
		var lanes [][]int64
		for _, ws := range ps {
			start, end := ws.Start, ws.Start+ws.Dur
			lane := -1
			for li := range lanes {
				// Pop slices that ended before this span starts.
				st := lanes[li]
				for len(st) > 0 && st[len(st)-1] <= start {
					st = st[:len(st)-1]
				}
				lanes[li] = st
				// Fits if the lane is idle or the top slice contains it.
				if len(st) == 0 || st[len(st)-1] >= end {
					lane = li
					break
				}
			}
			if lane == -1 {
				lanes = append(lanes, nil)
				lane = len(lanes) - 1
			}
			lanes[lane] = append(lanes[lane], end)

			args := map[string]any{
				"trace_id": ws.Trace,
				"span_id":  ws.Span,
			}
			if ws.Parent != "" {
				args["parent_id"] = ws.Parent
			}
			for k, v := range ws.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name: ws.Name,
				Cat:  "mdtask",
				Ph:   "X",
				Pid:  pid,
				Tid:  lane + 1,
				Ts:   float64(ws.Start) / 1e3,
				Dur:  float64(ws.Dur) / 1e3,
				Args: args,
			})
		}
	}

	out, err := json.Marshal(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
	if err != nil {
		// The event structs contain only marshalable types.
		panic(err)
	}
	return out
}
