package traj

import (
	"fmt"
	"io"

	"mdtask/internal/linalg"
)

// Window is one bounded chunk of a trajectory materialized for
// analysis: frames [Start, Start+Packed.NFrames) in packed form,
// complete with the per-frame centroid / radius-of-gyration / step-dRMS
// side data the pruned Hausdorff bounds consume. Windows are the unit
// of residency of the out-of-core PSA path: a streamed trajectory
// comparison holds at most one window per side.
type Window struct {
	// Start is the index of the window's first frame in the trajectory.
	Start int
	// Packed holds the window's frames and pruning statistics. Its
	// StepDRMS chain restarts at each window (entry 0 is 0).
	Packed *Packed
}

// NFrames returns the number of frames in the window.
func (w *Window) NFrames() int { return w.Packed.NFrames }

// CoordBytes returns the window's materialized coordinate payload in
// bytes — the unit the BytesStreamed metric accounts.
func (w *Window) CoordBytes() int64 {
	return int64(w.Packed.NFrames) * int64(w.Packed.NAtoms) * 3 * 8
}

// WindowIter walks a trajectory as a sequence of bounded windows,
// opening the underlying source lazily on the first Next. Each
// re-scan of a trajectory is a fresh WindowIter.
type WindowIter struct {
	ref  *Ref
	size int
	src  FrameSource
	pos  int
	done bool
}

// Windows returns an iterator over the trajectory in windows of at
// most size frames (size < 1 means one window spanning the whole
// trajectory). Close the iterator if it is abandoned before io.EOF.
func (r *Ref) Windows(size int) *WindowIter {
	if size < 1 || size > r.nFrames {
		size = r.nFrames
	}
	if size < 1 {
		size = 1 // zero-frame trajectories still terminate immediately
	}
	return &WindowIter{ref: r, size: size}
}

// Next materializes the next window, returning io.EOF after the last
// one (at which point the source is closed and the declared frame
// count has been validated).
func (it *WindowIter) Next() (*Window, error) {
	if it.done {
		return nil, io.EOF
	}
	if it.src == nil {
		src, err := it.ref.Open()
		if err != nil {
			it.done = true
			return nil, err
		}
		it.src = src
	}
	frames := make([][]linalg.Vec3, 0, it.size)
	start := it.pos
	for len(frames) < it.size {
		f, err := it.src.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			it.fail()
			return nil, err
		}
		if len(f.Coords) != it.ref.nAtoms {
			it.fail()
			return nil, fmt.Errorf("traj: %s: frame %d: %w (got %d, want %d)",
				it.ref.name, it.pos+len(frames), ErrShapeMismatch, len(f.Coords), it.ref.nAtoms)
		}
		frames = append(frames, f.Coords)
	}
	it.pos += len(frames)
	if len(frames) < it.size || it.pos >= it.ref.nFrames {
		// The stream ended (or will end at the declared count): verify
		// the shape promise and finish.
		if len(frames) == 0 || it.pos >= it.ref.nFrames {
			if err := it.closeAndCheck(); err != nil {
				return nil, err
			}
		}
		if len(frames) == 0 {
			return nil, io.EOF
		}
	}
	return &Window{Start: start, Packed: PackFrames(frames, it.ref.nAtoms)}, nil
}

// closeAndCheck finishes the iteration, validating the frame count
// against the ref's declared shape.
func (it *WindowIter) closeAndCheck() error {
	if it.done {
		return nil
	}
	// Probe one frame past the declared count so an over-long stream is
	// caught too.
	var extra bool
	if it.pos >= it.ref.nFrames {
		if _, err := it.src.NextFrame(); err == nil {
			extra = true
		}
	}
	it.fail() // closes the source; "done" from here on
	if extra || it.pos != it.ref.nFrames {
		got := fmt.Sprintf("%d", it.pos)
		if extra {
			got = fmt.Sprintf("more than %d", it.pos)
		}
		return fmt.Errorf("traj: %s: source yielded %s frames, ref declares %d", it.ref.name, got, it.ref.nFrames)
	}
	return nil
}

// fail closes the source and marks the iterator finished.
func (it *WindowIter) fail() {
	if it.src != nil {
		it.src.Close()
		it.src = nil
	}
	it.done = true
}

// Close releases the iterator's source; safe to call at any point.
func (it *WindowIter) Close() { it.fail() }

// NumWindows returns how many windows of the given size the ref spans
// (0 for an empty trajectory; size < 1 counts one window).
func (r *Ref) NumWindows(size int) int {
	if r.nFrames == 0 {
		return 0
	}
	if size < 1 || size >= r.nFrames {
		return 1
	}
	return (r.nFrames + size - 1) / size
}
