package traj

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// FrameSource is the streaming read interface of the trajectory layer:
// frames are produced one at a time in trajectory order, so a consumer
// never needs more than its own working set resident — the paper's
// iterative per-task trajectory reading, applied to every on-disk
// format. Implementations are not safe for concurrent use; open one
// source per goroutine.
type FrameSource interface {
	// NextFrame returns the next frame, or io.EOF after the last one.
	// The returned frame's coordinate slice is owned by the caller.
	NextFrame() (Frame, error)
	// NAtoms returns the per-frame atom count (known from the header or
	// the first frame).
	NAtoms() int
	// Close releases the underlying resources. Close is idempotent.
	Close() error
}

// Opener produces a fresh FrameSource positioned at the first frame.
// Windowed algorithms re-scan trajectories (the inner side of a
// Hausdorff window sweep is read once per outer window), so streaming
// inputs are described by how to open them, not by a single exhausted
// source.
type Opener func() (FrameSource, error)

// memSource streams an in-memory trajectory.
type memSource struct {
	t   *Trajectory
	pos int
}

// SourceOf returns a FrameSource over an in-memory trajectory. Frames
// are cloned, so the consumer may mutate them freely.
func SourceOf(t *Trajectory) FrameSource { return &memSource{t: t} }

func (s *memSource) NextFrame() (Frame, error) {
	if s.pos >= len(s.t.Frames) {
		return Frame{}, io.EOF
	}
	f := s.t.Frames[s.pos].Clone()
	s.pos++
	return f, nil
}

func (s *memSource) NAtoms() int { return s.t.NAtoms }
func (s *memSource) Close() error {
	s.pos = len(s.t.Frames)
	return nil
}

// mdtSource streams an MDT payload, closing the underlying file (if
// any) with the source.
type mdtSource struct {
	mr      *MDTReader
	closers []io.Closer
	// seek, when non-nil, is the raw (uncompressed) underlying reader:
	// MDT frames are fixed-size, so window reads can jump straight to a
	// frame offset instead of decoding everything before it.
	seek io.ReadSeeker
	done bool
}

// skipFrames advances by n frames. On a seekable plain-MDT source the
// jump is O(1); checksum verification is forfeited for that stream
// (window reads never reach the trailer anyway). Otherwise it falls
// back to the bounded read-and-discard skip.
func (s *mdtSource) skipFrames(n int) error {
	if n <= 0 {
		return nil
	}
	if s.seek == nil {
		return s.mr.SkipFrames(n)
	}
	mr := s.mr
	target := mr.read + n
	if target > mr.nFrames {
		target = mr.nFrames
	}
	frameBytes := 8 + int64(mr.nAtoms)*3*int64(mr.prec)
	if _, err := s.seek.Seek(int64(mr.headerLen)+int64(target)*frameBytes, io.SeekStart); err != nil {
		return err
	}
	mr.r.Reset(s.seek)
	mr.read = target
	mr.skipCRC = true
	return nil
}

func (s *mdtSource) NextFrame() (Frame, error) {
	if s.done {
		return Frame{}, io.EOF
	}
	f, err := s.mr.ReadFrame()
	if err == io.EOF {
		s.done = true
	}
	return f, err
}

func (s *mdtSource) NAtoms() int { return s.mr.NAtoms() }

func (s *mdtSource) Close() error {
	s.done = true
	var first error
	for i := len(s.closers) - 1; i >= 0; i-- {
		if err := s.closers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// OpenSource opens a trajectory file as a FrameSource, dispatching on
// the extension: .mdt, .mdt.gz, .xyzt and .xyzt.gz are supported. The
// decoders stream — no more than one frame is materialized at a time —
// so trajectories larger than memory can be consumed window by window.
func OpenSource(path string) (FrameSource, error) {
	kind, gzipped, err := formatOf(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var (
		r       io.Reader = f
		closers           = []io.Closer{f}
	)
	if gzipped {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("traj: %s: %w", path, err)
		}
		r = zr
		closers = append(closers, zr)
	}
	switch kind {
	case "mdt":
		mr, err := NewMDTReader(r)
		if err != nil {
			closeAll(closers)
			return nil, fmt.Errorf("traj: %s: %w", path, err)
		}
		src := &mdtSource{mr: mr, closers: closers}
		if !gzipped {
			src.seek = f
		}
		return src, nil
	case "xyzt":
		return newXYZTSource(r, path, closers), nil
	default:
		closeAll(closers)
		return nil, fmt.Errorf("traj: %s: unsupported trajectory format", path)
	}
}

// FileOpener returns an Opener over a trajectory file.
func FileOpener(path string) Opener {
	return func() (FrameSource, error) { return OpenSource(path) }
}

// formatOf classifies a trajectory path by extension.
func formatOf(path string) (kind string, gzipped bool, err error) {
	p := strings.ToLower(path)
	if strings.HasSuffix(p, ".gz") {
		gzipped = true
		p = strings.TrimSuffix(p, ".gz")
	}
	switch {
	case strings.HasSuffix(p, ".mdt"):
		return "mdt", gzipped, nil
	case strings.HasSuffix(p, ".xyzt"):
		return "xyzt", gzipped, nil
	default:
		return "", false, fmt.Errorf("traj: %s: unsupported trajectory format (want .mdt[.gz] or .xyzt[.gz])", path)
	}
}

func closeAll(closers []io.Closer) {
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i].Close()
	}
}

// MultiSource concatenates sub-sources produced on demand: next is
// called when the current sub-source is exhausted, and a (nil, nil)
// return ends the stream. The pilot and fleet engines use it to read a
// trajectory shipped as a sequence of window-sized MDT blobs without
// ever holding more than one blob's frames.
func MultiSource(nAtoms int, next func() (FrameSource, error)) FrameSource {
	return &multiSource{nAtoms: nAtoms, next: next}
}

type multiSource struct {
	nAtoms int
	next   func() (FrameSource, error)
	cur    FrameSource
	done   bool
}

func (m *multiSource) NextFrame() (Frame, error) {
	for {
		if m.done {
			return Frame{}, io.EOF
		}
		if m.cur == nil {
			src, err := m.next()
			if err != nil {
				m.done = true
				return Frame{}, err
			}
			if src == nil {
				m.done = true
				return Frame{}, io.EOF
			}
			m.cur = src
		}
		f, err := m.cur.NextFrame()
		if err == io.EOF {
			m.cur.Close()
			m.cur = nil
			continue
		}
		if err != nil {
			return Frame{}, err
		}
		if len(f.Coords) != m.nAtoms {
			return Frame{}, fmt.Errorf("%w: got %d coords, want %d", ErrShapeMismatch, len(f.Coords), m.nAtoms)
		}
		return f, nil
	}
}

func (m *multiSource) NAtoms() int { return m.nAtoms }

func (m *multiSource) Close() error {
	m.done = true
	if m.cur != nil {
		err := m.cur.Close()
		m.cur = nil
		return err
	}
	return nil
}
