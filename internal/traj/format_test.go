package traj

import (
	"bytes"
	"errors"
	"math"
	mathrand "math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mdtask/internal/linalg"
)

// roundTripMDT writes and re-reads a trajectory through the MDT format.
func roundTripMDT(t *testing.T, tr *Trajectory, prec int) *Trajectory {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.mdt")
	if err := WriteMDTFile(path, tr, prec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMDTFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func trajEqual(a, b *Trajectory, tol float64) bool {
	if a.Name != b.Name || a.NAtoms != b.NAtoms || len(a.Frames) != len(b.Frames) {
		return false
	}
	for f := range a.Frames {
		if math.Abs(a.Frames[f].Time-b.Frames[f].Time) > tol {
			return false
		}
		for i := range a.Frames[f].Coords {
			for k := 0; k < 3; k++ {
				if math.Abs(a.Frames[f].Coords[i][k]-b.Frames[f].Coords[i][k]) > tol {
					return false
				}
			}
		}
	}
	return true
}

func TestMDTRoundTripFloat64(t *testing.T) {
	tr := randTraj(t, 10, 7, 5)
	got := roundTripMDT(t, tr, 8)
	if !trajEqual(tr, got, 0) {
		t.Fatal("float64 round trip not exact")
	}
}

func TestMDTRoundTripFloat32(t *testing.T) {
	tr := randTraj(t, 11, 7, 5)
	got := roundTripMDT(t, tr, 4)
	if !trajEqual(tr, got, 1e-4) {
		t.Fatal("float32 round trip exceeded tolerance")
	}
}

func TestMDTRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			args[0] = reflect.ValueOf(uint64(r.Int63()))
			args[1] = reflect.ValueOf(1 + r.Intn(20))
			args[2] = reflect.ValueOf(r.Intn(6))
		},
	}
	f := func(seed uint64, nAtoms, nFrames int) bool {
		tr := randTraj(t, seed, nAtoms, nFrames)
		return trajEqual(tr, roundTripMDT(t, tr, 8), 0)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMDTBadMagic(t *testing.T) {
	_, err := NewMDTReader(strings.NewReader("NOTMDT..."))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestMDTBadPrecision(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewMDTWriter(&buf, "x", 1, 1, 5); !errors.Is(err, ErrBadPrecision) {
		t.Fatalf("writer err = %v, want ErrBadPrecision", err)
	}
}

func TestMDTTruncated(t *testing.T) {
	tr := randTraj(t, 12, 4, 3)
	path := filepath.Join(t.TempDir(), "t.mdt")
	if err := WriteMDTFile(path, tr, 8); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := readMDTBytes(data[:len(data)/2])
	if !errors.Is(rerr, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", rerr)
	}
}

func TestMDTChecksumDetectsCorruption(t *testing.T) {
	tr := randTraj(t, 13, 4, 3)
	path := filepath.Join(t.TempDir(), "t.mdt")
	if err := WriteMDTFile(path, tr, 8); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0xFF // flip a payload byte near the end
	_, rerr := readMDTBytes(data)
	if !errors.Is(rerr, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", rerr)
	}
}

func readMDTBytes(b []byte) (*Trajectory, error) {
	mr, err := NewMDTReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return mr.ReadAll()
}

func TestMDTWriterShapeCheck(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewMDTWriter(&buf, "x", 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(Frame{Coords: make([]linalg.Vec3, 2)}); err == nil {
		t.Fatal("WriteFrame accepted wrong shape")
	}
}

func TestMDTHeaderFields(t *testing.T) {
	tr := randTraj(t, 14, 6, 2)
	tr.Name = "hello world"
	var buf bytes.Buffer
	w, err := NewMDTWriter(&buf, tr.Name, tr.NAtoms, len(tr.Frames), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mr, err := NewMDTReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Name() != "hello world" || mr.NAtoms() != 6 || mr.NFrames() != 2 {
		t.Errorf("header = %q/%d/%d", mr.Name(), mr.NAtoms(), mr.NFrames())
	}
}

func TestXYZTRoundTrip(t *testing.T) {
	tr := randTraj(t, 15, 5, 4)
	tr.Name = "walker"
	var buf bytes.Buffer
	if err := WriteXYZT(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !trajEqual(tr, got, 1e-6) {
		t.Fatal("xyzt round trip mismatch")
	}
}

func TestXYZTFileRoundTrip(t *testing.T) {
	tr := randTraj(t, 16, 3, 2)
	path := filepath.Join(t.TempDir(), "t.xyzt")
	if err := WriteXYZTFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZTFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !trajEqual(tr, got, 1e-6) {
		t.Fatal("xyzt file round trip mismatch")
	}
}

func TestXYZTErrors(t *testing.T) {
	cases := map[string]string{
		"bad atom count":      "abc\nt=0 x\n",
		"truncated frame":     "2\nt=0 x\n1 2 3\n",
		"bad coordinate":      "1\nt=0 x\n1 2 z\n",
		"missing comment":     "1\n",
		"inconsistent counts": "1\nt=0 x\n1 2 3\n2\nt=1 x\n1 2 3\n4 5 6\n",
		"bad time":            "1\nt=zz x\n1 2 3\n",
		"short coord line":    "1\nt=0 x\n1 2\n",
	}
	for name, input := range cases {
		if _, err := ReadXYZT(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadXYZT accepted %q", name, input)
		}
	}
}

func TestXYZTEmpty(t *testing.T) {
	got, err := ReadXYZT(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if got.NFrames() != 0 {
		t.Errorf("NFrames = %d", got.NFrames())
	}
}

func TestMDTStreamingReader(t *testing.T) {
	tr := randTraj(t, 17, 4, 6)
	path := filepath.Join(t.TempDir(), "t.mdt")
	if err := WriteMDTFile(path, tr, 8); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mr, err := NewMDTReader(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fr, err := mr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Time != tr.Frames[i].Time {
			t.Fatalf("frame %d time %v, want %v", i, fr.Time, tr.Frames[i].Time)
		}
	}
	if _, err := mr.ReadFrame(); err == nil || err.Error() != "EOF" {
		t.Fatalf("expected io.EOF after last frame, got %v", err)
	}
}
