package traj

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// fuzzTraj builds a small deterministic trajectory from fuzzed shape
// parameters (an LCG keeps the package dependency-free).
func fuzzTraj(nAtoms, nFrames int, seed uint64) *Trajectory {
	t := New("fuzz", nAtoms)
	state := seed | 1
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11)%2000) / 16.0
	}
	for f := 0; f < nFrames; f++ {
		fr := Frame{Time: float64(f)}
		for a := 0; a < nAtoms; a++ {
			fr.Coords = append(fr.Coords, [3]float64{next(), next(), next()})
		}
		t.Frames = append(t.Frames, fr)
	}
	return t
}

// FuzzReadXYZT throws arbitrary text at the XYZT decoder: it must never
// panic or allocate proportionally to a hostile header, and anything it
// accepts must re-encode and re-parse to the same shape.
func FuzzReadXYZT(f *testing.F) {
	f.Add([]byte("2\nt=0 demo\n0 0 0\n1 1 1\n2\nt=1 demo\n0 0 1\n1 0 1\n"))
	f.Add([]byte("1\nt=0.5\n1e300 -2.5 3\n"))
	f.Add([]byte("999999999\nt=0\n0 0 0\n")) // hostile count, truncated frame
	f.Add([]byte("2\nt=nope\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadXYZT(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("parse error carries no line position: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteXYZT(&buf, tr); err != nil {
			t.Fatalf("accepted trajectory fails to encode: %v", err)
		}
		back, err := ReadXYZT(&buf)
		if err != nil {
			t.Fatalf("re-encoded trajectory fails to parse: %v", err)
		}
		if back.NAtoms != tr.NAtoms || back.NFrames() != tr.NFrames() {
			t.Fatalf("round trip changed shape: %d×%d -> %d×%d",
				tr.NAtoms, tr.NFrames(), back.NAtoms, back.NFrames())
		}
	})
}

// FuzzDecodeMDT throws arbitrary bytes at the MDT decoder: hostile
// atom/frame counts must return errors without unbounded allocation,
// and accepted payloads must round-trip exactly.
func FuzzDecodeMDT(f *testing.F) {
	if blob, err := EncodeMDT(fuzzTraj(3, 2, 42), 8); err == nil {
		f.Add(blob)
	}
	if blob, err := EncodeMDT(fuzzTraj(1, 5, 7), 4); err == nil {
		f.Add(blob)
	}
	f.Add([]byte("MDT1"))
	f.Add([]byte("MDT1\x08\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff")) // hostile counts
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeMDT(data)
		if err != nil {
			return
		}
		blob, err := EncodeMDT(tr, 8)
		if err != nil {
			t.Fatalf("accepted trajectory fails to encode: %v", err)
		}
		back, err := DecodeMDT(blob)
		if err != nil {
			t.Fatalf("re-encoded trajectory fails to decode: %v", err)
		}
		if back.NAtoms != tr.NAtoms || back.NFrames() != tr.NFrames() {
			t.Fatalf("round trip changed shape")
		}
		for i := range tr.Frames {
			for a := range tr.Frames[i].Coords {
				if back.Frames[i].Coords[a] != tr.Frames[i].Coords[a] {
					t.Fatalf("frame %d atom %d changed in round trip", i, a)
				}
			}
		}
	})
}

// FuzzWindowRoundTrip drives the window chunker over fuzzed shapes:
// concatenating the windows of any trajectory must reproduce it
// exactly, for any window size, from both a memory-backed ref and an
// MDT-blob-backed stream ref.
func FuzzWindowRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(7), uint8(2), uint64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint64(9))
	f.Add(uint8(0), uint8(4), uint8(3), uint64(5))
	f.Add(uint8(5), uint8(0), uint8(2), uint64(3))
	f.Add(uint8(4), uint8(6), uint8(200), uint64(11))
	f.Fuzz(func(t *testing.T, nAtoms, nFrames, window uint8, seed uint64) {
		na, nf, w := int(nAtoms)%16, int(nFrames)%32, int(window)
		tr := fuzzTraj(na, nf, seed)
		blob, err := EncodeMDT(tr, 8)
		if err != nil {
			t.Fatal(err)
		}
		streamRef, err := NewStreamRef(tr.Name, na, nf, func() (FrameSource, error) {
			mr, err := NewMDTReader(bytes.NewReader(blob))
			if err != nil {
				return nil, err
			}
			return &mdtSource{mr: mr}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range []*Ref{MemRef(tr), streamRef} {
			it := ref.Windows(w)
			frames := 0
			windows := 0
			for {
				win, err := it.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("window %d: %v", windows, err)
				}
				if win.Start != frames {
					t.Fatalf("window %d starts at %d, want %d", windows, win.Start, frames)
				}
				for i := 0; i < win.Packed.NFrames; i++ {
					row := win.Packed.Row(i)
					want := tr.Frames[frames+i].Coords
					for a := 0; a < na; a++ {
						for k := 0; k < 3; k++ {
							if row[a*3+k] != want[a][k] {
								t.Fatalf("window %d frame %d atom %d component %d differs", windows, i, a, k)
							}
						}
					}
				}
				frames += win.Packed.NFrames
				windows++
			}
			it.Close()
			if frames != nf {
				t.Fatalf("windows cover %d frames, want %d", frames, nf)
			}
			if want := ref.NumWindows(w); windows != want {
				t.Fatalf("iterated %d windows, NumWindows says %d", windows, want)
			}
		}
	})
}
