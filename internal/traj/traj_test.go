package traj

import (
	"errors"
	"math/rand/v2"
	"testing"

	"mdtask/internal/linalg"
)

func randTraj(t *testing.T, seed uint64, nAtoms, nFrames int) *Trajectory {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed^0xABCD))
	tr := New("test", nAtoms)
	for f := 0; f < nFrames; f++ {
		coords := make([]linalg.Vec3, nAtoms)
		for i := range coords {
			coords[i] = linalg.Vec3{r.NormFloat64() * 10, r.NormFloat64() * 10, r.NormFloat64() * 10}
		}
		if err := tr.AppendFrame(Frame{Time: float64(f) * 2.5, Coords: coords}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendFrameValidatesShape(t *testing.T) {
	tr := New("x", 3)
	err := tr.AppendFrame(Frame{Coords: make([]linalg.Vec3, 2)})
	if !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("err = %v, want ErrShapeMismatch", err)
	}
	if err := tr.AppendFrame(Frame{Coords: make([]linalg.Vec3, 3)}); err != nil {
		t.Fatal(err)
	}
	if tr.NFrames() != 1 {
		t.Errorf("NFrames = %d", tr.NFrames())
	}
}

func TestValidate(t *testing.T) {
	tr := randTraj(t, 1, 5, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Frames[1].Coords = tr.Frames[1].Coords[:2]
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted malformed trajectory")
	}
	bad := &Trajectory{NAtoms: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted negative atom count")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := randTraj(t, 2, 4, 2)
	cl := tr.Clone()
	cl.Frames[0].Coords[0][0] = 999
	if tr.Frames[0].Coords[0][0] == 999 {
		t.Fatal("Clone shares coordinate storage")
	}
}

func TestBytes(t *testing.T) {
	tr := randTraj(t, 3, 10, 4)
	if got := tr.Bytes(); got != 10*4*24 {
		t.Errorf("Bytes = %d, want %d", got, 10*4*24)
	}
	ens := Ensemble{tr, tr}
	if got := ens.Bytes(); got != 2*tr.Bytes() {
		t.Errorf("Ensemble.Bytes = %d", got)
	}
}

func TestEnsembleValidate(t *testing.T) {
	ens := Ensemble{randTraj(t, 4, 3, 2), nil}
	if err := ens.Validate(); err == nil {
		t.Fatal("Validate accepted nil member")
	}
	ens = Ensemble{randTraj(t, 5, 3, 2), randTraj(t, 6, 4, 2)}
	if err := ens.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAtoms(t *testing.T) {
	tr := randTraj(t, 7, 6, 3)
	sub, err := tr.SelectAtoms([]int{5, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NAtoms != 3 || sub.NFrames() != 3 {
		t.Fatalf("shape = %d atoms, %d frames", sub.NAtoms, sub.NFrames())
	}
	for f := range sub.Frames {
		if sub.Frames[f].Coords[0] != tr.Frames[f].Coords[5] ||
			sub.Frames[f].Coords[1] != tr.Frames[f].Coords[0] ||
			sub.Frames[f].Coords[2] != tr.Frames[f].Coords[2] {
			t.Fatalf("frame %d atoms reordered incorrectly", f)
		}
	}
	if _, err := tr.SelectAtoms([]int{6}); err == nil {
		t.Fatal("SelectAtoms accepted out-of-range index")
	}
	if _, err := tr.SelectAtoms([]int{-1}); err == nil {
		t.Fatal("SelectAtoms accepted negative index")
	}
}

func TestSelectFrames(t *testing.T) {
	tr := randTraj(t, 8, 2, 10)
	sub, err := tr.SelectFrames(2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NFrames() != 3 {
		t.Fatalf("NFrames = %d, want 3", sub.NFrames())
	}
	for i, want := range []float64{5, 10, 15} {
		if sub.Frames[i].Time != want {
			t.Errorf("frame %d time = %v, want %v", i, sub.Frames[i].Time, want)
		}
	}
	if _, err := tr.SelectFrames(0, 11, 1); err == nil {
		t.Fatal("SelectFrames accepted out-of-range stop")
	}
	if _, err := tr.SelectFrames(0, 5, 0); err == nil {
		t.Fatal("SelectFrames accepted zero stride")
	}
	if _, err := tr.SelectFrames(5, 2, 1); err == nil {
		t.Fatal("SelectFrames accepted start > stop")
	}
}

func TestSphereSelection(t *testing.T) {
	frame := []linalg.Vec3{{0, 0, 0}, {1, 0, 0}, {5, 0, 0}}
	got := SphereSelection(frame, linalg.Vec3{0, 0, 0}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SphereSelection = %v", got)
	}
}
