package traj

import (
	"os"
	"path/filepath"
	"testing"

	"mdtask/internal/linalg"
)

func TestMDTGZRoundTrip(t *testing.T) {
	tr := randTraj(t, 21, 50, 10)
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.mdt")
	zipped := filepath.Join(dir, "t.mdt.gz")
	if err := WriteMDTFile(plain, tr, 8); err != nil {
		t.Fatal(err)
	}
	if err := WriteMDTGZFile(zipped, tr, 8); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMDTGZFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if !trajEqual(tr, got, 0) {
		t.Fatal("gz round trip mismatch")
	}
	// Random coordinates barely compress; the format must at least not
	// explode and the file must be a valid gzip stream.
	pi, _ := os.Stat(plain)
	zi, _ := os.Stat(zipped)
	if zi.Size() > pi.Size()*2 {
		t.Errorf("gz size %d vs plain %d", zi.Size(), pi.Size())
	}
}

func TestMDTGZCompressesStructuredData(t *testing.T) {
	// A lattice-like trajectory (many repeated mantissa patterns)
	// compresses well.
	tr := New("lattice", 1000)
	coords := make([]linalg.Vec3, 1000)
	for i := range coords {
		coords[i] = linalg.Vec3{float64(i % 10), float64(i / 10 % 10), float64(i / 100)}
	}
	for f := 0; f < 5; f++ {
		if err := tr.AppendFrame(Frame{Time: float64(f), Coords: coords}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.mdt")
	zipped := filepath.Join(dir, "t.mdt.gz")
	if err := WriteMDTFile(plain, tr, 8); err != nil {
		t.Fatal(err)
	}
	if err := WriteMDTGZFile(zipped, tr, 8); err != nil {
		t.Fatal(err)
	}
	pi, _ := os.Stat(plain)
	zi, _ := os.Stat(zipped)
	if zi.Size() >= pi.Size()/2 {
		t.Errorf("structured data should compress >2x: %d vs %d", zi.Size(), pi.Size())
	}
	got, err := ReadMDTGZFile(zipped)
	if err != nil || !trajEqual(tr, got, 0) {
		t.Fatal("structured gz round trip failed")
	}
}

func TestMDTGZRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mdt.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMDTGZFile(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
