package traj

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Ref is a windowed handle to one trajectory: its identity and shape
// plus a way to stream its frames, without committing to where the
// frames live. A Ref is either memory-backed (wrapping a loaded
// *Trajectory) or stream-backed (an Opener over a file, a chain of
// staged window blobs, or a remote fetch). The PSA engines consume
// RefEnsembles so the same drivers run fully in-memory or out-of-core.
type Ref struct {
	name    string
	nAtoms  int
	nFrames int
	mem     *Trajectory
	open    Opener

	// Content digest, computed lazily by Digest and cached: the block
	// cache keys every ref it sees, so the (possibly streaming) hash
	// pass must run at most once per ref.
	digestOnce sync.Once
	digest     string
	digestErr  error
}

// MemRef wraps a loaded trajectory.
func MemRef(t *Trajectory) *Ref {
	return &Ref{name: t.Name, nAtoms: t.NAtoms, nFrames: t.NFrames(), mem: t}
}

// NewStreamRef describes a stream-backed trajectory of known shape.
// The opener must yield the declared number of frames of the declared
// atom count; windowed reads validate both.
func NewStreamRef(name string, nAtoms, nFrames int, open Opener) (*Ref, error) {
	if nAtoms < 0 || nFrames < 0 {
		return nil, fmt.Errorf("traj: stream ref %q has negative shape (%d atoms, %d frames)", name, nAtoms, nFrames)
	}
	if open == nil {
		return nil, fmt.Errorf("traj: stream ref %q has no opener", name)
	}
	return &Ref{name: name, nAtoms: nAtoms, nFrames: nFrames, open: open}, nil
}

// FileRef builds a stream-backed Ref over a trajectory file, learning
// the shape from the header (MDT) or a counting scan (XYZT, gzip). For
// plain .mdt files the header's claimed frame count is validated
// against the file size, so a hostile header can never make downstream
// per-frame allocations unbounded.
func FileRef(path string) (*Ref, error) {
	kind, gzipped, err := formatOf(path)
	if err != nil {
		return nil, err
	}
	if kind == "mdt" && !gzipped {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		mr, err := NewMDTReader(f)
		if err != nil {
			return nil, fmt.Errorf("traj: %s: %w", path, err)
		}
		want, ok := mr.impliedSize()
		if !ok || st.Size() != want {
			return nil, fmt.Errorf("traj: %s: %w: file is %d bytes, header implies %d", path, ErrTruncated, st.Size(), want)
		}
		return &Ref{name: mr.Name(), nAtoms: mr.NAtoms(), nFrames: mr.NFrames(), open: FileOpener(path)}, nil
	}
	// Compressed or text formats: shape requires a full (streaming,
	// bounded-memory) scan, which also validates the payload end to end.
	src, err := OpenSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	name := ""
	if ms, ok := src.(*mdtSource); ok {
		name = ms.mr.Name()
	}
	frames := 0
	nAtoms := -1
	for {
		f, err := src.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: %s: %w", path, err)
		}
		if nAtoms < 0 {
			nAtoms = len(f.Coords)
		} else if len(f.Coords) != nAtoms {
			return nil, fmt.Errorf("traj: %s: frame %d: %w", path, frames, ErrShapeMismatch)
		}
		frames++
	}
	if nAtoms < 0 {
		nAtoms = src.NAtoms()
	}
	if xs, ok := src.(*xyztSource); ok {
		name = xs.d.name
	}
	if name == "" {
		name = refNameFromPath(path)
	}
	return &Ref{name: name, nAtoms: nAtoms, nFrames: frames, open: FileOpener(path)}, nil
}

// refNameFromPath derives a display name from a file path.
func refNameFromPath(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	for _, suf := range []string{".gz", ".mdt", ".xyzt"} {
		base = strings.TrimSuffix(base, suf)
	}
	return base
}

// Name returns the trajectory's display name.
func (r *Ref) Name() string { return r.name }

// NAtoms returns the per-frame atom count.
func (r *Ref) NAtoms() int { return r.nAtoms }

// NFrames returns the frame count.
func (r *Ref) NFrames() int { return r.nFrames }

// Bytes returns the coordinate payload size in bytes (see
// Trajectory.Bytes).
func (r *Ref) Bytes() int64 { return int64(r.nFrames) * int64(r.nAtoms) * 3 * 8 }

// InMemory reports whether the ref wraps a loaded trajectory.
func (r *Ref) InMemory() bool { return r.mem != nil }

// Open returns a fresh FrameSource positioned at the first frame.
func (r *Ref) Open() (FrameSource, error) {
	if r.mem != nil {
		return SourceOf(r.mem), nil
	}
	return r.open()
}

// Load materializes the whole trajectory. Memory-backed refs return
// their trajectory (shared, with its cached packed representation);
// stream-backed refs read every frame.
func (r *Ref) Load() (*Trajectory, error) {
	if r.mem != nil {
		return r.mem, nil
	}
	src, err := r.Open()
	if err != nil {
		return nil, err
	}
	defer src.Close()
	t := New(r.name, r.nAtoms)
	t.Frames = make([]Frame, 0, min(r.nFrames, xyztAllocCap))
	for {
		f, err := src.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := t.AppendFrame(f); err != nil {
			return nil, fmt.Errorf("traj: %s: frame %d: %w", r.name, t.NFrames(), err)
		}
	}
	if t.NFrames() != r.nFrames {
		return nil, fmt.Errorf("traj: %s: source yielded %d frames, ref declares %d", r.name, t.NFrames(), r.nFrames)
	}
	return t, nil
}

// EncodeMDTWindow serializes frames [start, start+count) as an MDT blob
// with the given precision, streaming from the source so only the
// window is resident. It is how the pilot and fleet engines ship
// windows across process boundaries. A start at or past the end yields
// an empty (zero-frame) blob.
func (r *Ref) EncodeMDTWindow(start, count, prec int) ([]byte, error) {
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("traj: %s: negative window [%d,+%d)", r.name, start, count)
	}
	if start > r.nFrames {
		start = r.nFrames
	}
	if start+count > r.nFrames {
		count = r.nFrames - start
	}
	if r.mem != nil {
		w := &Trajectory{Name: r.name, NAtoms: r.nAtoms, Frames: r.mem.Frames[start : start+count]}
		return EncodeMDT(w, prec)
	}
	src, err := r.Open()
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if err := skipFrames(src, start); err != nil {
		return nil, fmt.Errorf("traj: %s: %w", r.name, err)
	}
	var buf sliceWriter
	mw, err := NewMDTWriter(&buf, r.name, r.nAtoms, count, prec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		f, err := src.NextFrame()
		if err != nil {
			return nil, fmt.Errorf("traj: %s: window frame %d: %w", r.name, start+i, err)
		}
		if err := mw.WriteFrame(f); err != nil {
			return nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// skipFrames advances a source by n frames: O(1) seek on plain MDT
// files, the MDT reader's bounded read-skip otherwise, frame-by-frame
// decode as the last resort. Keeping window serving cheap matters: the
// fleet coordinator skips to a window once per fetch, so without the
// seek a full streamed scan would cost O(frames²/window) re-decoding
// per trajectory on the serving side.
func skipFrames(src FrameSource, n int) error {
	if ms, ok := src.(*mdtSource); ok {
		return ms.skipFrames(n)
	}
	for i := 0; i < n; i++ {
		if _, err := src.NextFrame(); err != nil {
			return err
		}
	}
	return nil
}

// WindowChainRef describes a trajectory shipped as nwin consecutive
// window-sized MDT blobs: opening it replays the chain through
// MultiSource, fetching blob win (0-based) on demand via fetch and
// decoding at most one blob's frames at a time. The pilot engine uses
// it over staged sandbox files and the fleet worker over coordinator
// HTTP fetches, keeping the two engines' window-chain semantics in one
// place.
func WindowChainRef(name string, nAtoms, nFrames, nwin int, fetch func(win int) ([]byte, error)) (*Ref, error) {
	open := func() (FrameSource, error) {
		next := 0
		return MultiSource(nAtoms, func() (FrameSource, error) {
			if next >= nwin {
				return nil, nil
			}
			blob, err := fetch(next)
			next++
			if err != nil {
				return nil, err
			}
			t, err := DecodeMDT(blob)
			if err != nil {
				return nil, fmt.Errorf("traj: %s: window %d: %w", name, next-1, err)
			}
			return SourceOf(t), nil
		}), nil
	}
	return NewStreamRef(name, nAtoms, nFrames, open)
}

// RefEnsemble is an ensemble of trajectory handles — the input type of
// the streaming-capable PSA drivers.
type RefEnsemble []*Ref

// RefsOf wraps a loaded ensemble in memory-backed refs.
func RefsOf(ens Ensemble) RefEnsemble {
	out := make(RefEnsemble, len(ens))
	for i, t := range ens {
		out[i] = MemRef(t)
	}
	return out
}

// Load materializes every member (memory-backed members are shared,
// not copied).
func (e RefEnsemble) Load() (Ensemble, error) {
	out := make(Ensemble, len(e))
	for i, r := range e {
		t, err := r.Load()
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// Validate checks the ensemble's structural invariants.
func (e RefEnsemble) Validate() error {
	for i, r := range e {
		if r == nil {
			return fmt.Errorf("traj: ref ensemble member %d is nil", i)
		}
		if r.nAtoms < 0 || r.nFrames < 0 {
			return fmt.Errorf("traj: ref ensemble member %d (%s) has negative shape", i, r.name)
		}
	}
	return nil
}

// Bytes returns the total coordinate payload of the ensemble.
func (e RefEnsemble) Bytes() int64 {
	var n int64
	for _, r := range e {
		n += r.Bytes()
	}
	return n
}
