package traj

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// Digest returns the hex SHA-256 of the trajectory's content — shape
// plus every coordinate's float64 bits — computed lazily and cached on
// the ref. Memory-backed and stream-backed refs over the same data
// digest identically: a stream-backed ref hashes frame by frame with
// one frame resident at a time, so digesting never materializes the
// trajectory. The digest is the content-addressing unit of the block
// cache: PSA block keys are built from the digests of the trajectories
// a block reads, so identical trajectories hit cached blocks whatever
// job, engine, or matrix position they appear in.
func (r *Ref) Digest() (string, error) {
	r.digestOnce.Do(func() {
		r.digest, r.digestErr = r.computeDigest()
	})
	return r.digest, r.digestErr
}

func (r *Ref) computeDigest() (string, error) {
	h := sha256.New()
	var buf [8]byte
	writeI := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeI(int64(r.nAtoms))
	writeI(int64(r.nFrames))
	src, err := r.Open()
	if err != nil {
		return "", err
	}
	defer src.Close()
	chunk := make([]byte, 0, 24*256)
	for {
		f, err := src.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		for _, p := range f.Coords {
			for k := 0; k < 3; k++ {
				chunk = binary.LittleEndian.AppendUint64(chunk, math.Float64bits(p[k]))
			}
			if len(chunk) >= 24*256 {
				h.Write(chunk)
				chunk = chunk[:0]
			}
		}
	}
	h.Write(chunk)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Digests resolves the content digest of every member, in order.
func (e RefEnsemble) Digests() ([]string, error) {
	out := make([]string, len(e))
	for i, r := range e {
		d, err := r.Digest()
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
