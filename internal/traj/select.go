package traj

import (
	"fmt"

	"mdtask/internal/linalg"
)

// SelectAtoms returns a new trajectory restricted to the atoms at the
// given indices (in the given order). This is the "Sub-setting" analysis
// of the paper's §2: isolating parts of interest of an MD simulation.
func (t *Trajectory) SelectAtoms(indices []int) (*Trajectory, error) {
	for _, ix := range indices {
		if ix < 0 || ix >= t.NAtoms {
			return nil, fmt.Errorf("traj: atom index %d out of range [0,%d)", ix, t.NAtoms)
		}
	}
	out := New(t.Name+"/atoms", len(indices))
	for _, f := range t.Frames {
		coords := make([]linalg.Vec3, len(indices))
		for k, ix := range indices {
			coords[k] = f.Coords[ix]
		}
		out.Frames = append(out.Frames, Frame{Time: f.Time, Coords: coords})
	}
	return out, nil
}

// SelectFrames returns a new trajectory containing frames
// [start, stop) taken every stride frames. Coordinates are shared with
// the receiver (no copy); use Clone for an independent trajectory.
func (t *Trajectory) SelectFrames(start, stop, stride int) (*Trajectory, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("traj: stride must be positive, got %d", stride)
	}
	if start < 0 || stop > len(t.Frames) || start > stop {
		return nil, fmt.Errorf("traj: frame range [%d,%d) out of bounds [0,%d)", start, stop, len(t.Frames))
	}
	out := New(t.Name+"/frames", t.NAtoms)
	for i := start; i < stop; i += stride {
		out.Frames = append(out.Frames, t.Frames[i])
	}
	return out, nil
}

// SphereSelection returns the indices of atoms in frame whose positions
// lie within radius of center.
func SphereSelection(frame []linalg.Vec3, center linalg.Vec3, radius float64) []int {
	r2 := radius * radius
	var out []int
	for i, p := range frame {
		if linalg.Dist2(p, center) <= r2 {
			out = append(out, i)
		}
	}
	return out
}
