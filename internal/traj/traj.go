// Package traj provides the molecular-dynamics trajectory data model and
// file formats used throughout the repository. A trajectory is a time
// series of frames; each frame holds the 3-D positions of N atoms. This
// replaces the trajectory I/O layer of MDAnalysis in the paper: the
// analysis algorithms only consume "frames of N×3 coordinates", which is
// exactly what this package produces.
//
// Two on-disk formats are provided:
//
//   - MDT (.mdt): a compact binary format with a checksummed payload and
//     selectable float32/float64 coordinate precision (format.go).
//   - XYZT (.xyzt): a human-readable text format in the spirit of XYZ
//     files, one block per frame (xyzt.go).
//
// Beyond the frame-of-Vec3 data model, the package provides a packed
// analysis representation (packed.go): Trajectory.Packed flattens every
// frame into one contiguous []float64 and precomputes the per-frame
// centroids, radii of gyration, and consecutive-frame dRMS values that
// the pruned Hausdorff kernel's lower bounds consume, once per
// trajectory instead of once per trajectory comparison.
//
// For inputs larger than memory, the package also provides a streaming
// layer:
//
//   - FrameSource (source.go) decodes any supported format one frame
//     at a time; OpenSource dispatches on extension (.mdt, .mdt.gz,
//     .xyzt, .xyzt.gz) and MultiSource chains blob sequences.
//   - Ref (ref.go) is a windowed handle to one trajectory — identity
//     and shape plus an Opener — wherever its frames live: memory
//     (MemRef), a file (FileRef, header-only until read), or any
//     custom stream (NewStreamRef: staged window files, an HTTP
//     coordinator endpoint).
//   - Window / WindowIter (window.go) materialize bounded frame
//     windows, each with its packed centroid/rg/step-dRMS side data,
//     so out-of-core consumers (hausdorff.DistanceStreamed) hold at
//     most two windows per comparison.
//
// The decoders treat headers as hostile input: claimed atom or frame
// counts never size an allocation beyond what the payload actually
// delivers (fuzzed by FuzzReadXYZT / FuzzDecodeMDT /
// FuzzWindowRoundTrip), and parse errors carry the file path and
// 1-based line number where applicable.
package traj

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mdtask/internal/linalg"
)

// Frame is one snapshot of a physical system: the positions of all atoms
// at a simulation time (in picoseconds).
type Frame struct {
	Time   float64
	Coords []linalg.Vec3
}

// Clone returns a deep copy of the frame.
func (f Frame) Clone() Frame {
	c := make([]linalg.Vec3, len(f.Coords))
	copy(c, f.Coords)
	return Frame{Time: f.Time, Coords: c}
}

// Trajectory is a named time series of frames over a fixed set of atoms.
// All frames must have exactly NAtoms coordinates.
type Trajectory struct {
	Name   string
	NAtoms int
	Frames []Frame

	// packed caches the contiguous frame representation (see packed.go),
	// built on first use by Packed().
	packed atomic.Pointer[Packed]
}

// ErrShapeMismatch is returned when a frame's coordinate count does not
// match the trajectory's atom count.
var ErrShapeMismatch = errors.New("traj: frame size does not match trajectory atom count")

// New creates an empty trajectory for nAtoms atoms.
func New(name string, nAtoms int) *Trajectory {
	return &Trajectory{Name: name, NAtoms: nAtoms}
}

// AppendFrame adds a frame, validating its shape.
func (t *Trajectory) AppendFrame(f Frame) error {
	if len(f.Coords) != t.NAtoms {
		return fmt.Errorf("%w: got %d coords, want %d", ErrShapeMismatch, len(f.Coords), t.NAtoms)
	}
	t.Frames = append(t.Frames, f)
	return nil
}

// NFrames returns the number of frames.
func (t *Trajectory) NFrames() int { return len(t.Frames) }

// FrameCoords returns the coordinate slice of frame i (shared, not copied).
func (t *Trajectory) FrameCoords(i int) []linalg.Vec3 { return t.Frames[i].Coords }

// Validate checks the structural invariants of the trajectory.
func (t *Trajectory) Validate() error {
	if t.NAtoms < 0 {
		return fmt.Errorf("traj: negative atom count %d", t.NAtoms)
	}
	for i, f := range t.Frames {
		if len(f.Coords) != t.NAtoms {
			return fmt.Errorf("traj: frame %d: %w (got %d, want %d)",
				i, ErrShapeMismatch, len(f.Coords), t.NAtoms)
		}
	}
	return nil
}

// Clone returns a deep copy of the trajectory.
func (t *Trajectory) Clone() *Trajectory {
	out := &Trajectory{Name: t.Name, NAtoms: t.NAtoms, Frames: make([]Frame, len(t.Frames))}
	for i, f := range t.Frames {
		out.Frames[i] = f.Clone()
	}
	return out
}

// Bytes returns the in-memory coordinate payload size in bytes (8 bytes
// per float64 component), used for data-volume accounting in the
// experiment harness.
func (t *Trajectory) Bytes() int64 {
	return int64(len(t.Frames)) * int64(t.NAtoms) * 3 * 8
}

// Ensemble is a set of trajectories analyzed together, e.g. by Path
// Similarity Analysis.
type Ensemble []*Trajectory

// Validate checks every member trajectory.
func (e Ensemble) Validate() error {
	for i, t := range e {
		if t == nil {
			return fmt.Errorf("traj: ensemble member %d is nil", i)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("traj: ensemble member %d (%s): %w", i, t.Name, err)
		}
	}
	return nil
}

// Bytes returns the total coordinate payload of the ensemble.
func (e Ensemble) Bytes() int64 {
	var n int64
	for _, t := range e {
		n += t.Bytes()
	}
	return n
}
