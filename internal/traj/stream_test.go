package traj

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdtask/internal/linalg"
)

func streamTestTraj(nAtoms, nFrames int) *Trajectory {
	t := New("stream", nAtoms)
	for f := 0; f < nFrames; f++ {
		fr := Frame{Time: float64(f) * 0.5}
		for a := 0; a < nAtoms; a++ {
			fr.Coords = append(fr.Coords, linalg.Vec3{
				float64(f*nAtoms+a) * 0.25, float64(a) - 1.5, float64(f),
			})
		}
		t.Frames = append(t.Frames, fr)
	}
	return t
}

// drain reads a source to EOF, returning its frames.
func drain(t *testing.T, src FrameSource) []Frame {
	t.Helper()
	var out []Frame
	for {
		f, err := src.NextFrame()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
}

// OpenSource must stream every supported format — .mdt, .mdt.gz,
// .xyzt, .xyzt.gz — frame-exactly for the binary formats, and reject
// unknown extensions.
func TestOpenSourceFormats(t *testing.T) {
	tr := streamTestTraj(3, 5)
	dir := t.TempDir()

	mdt := filepath.Join(dir, "a.mdt")
	if err := WriteMDTFile(mdt, tr, 8); err != nil {
		t.Fatal(err)
	}
	mdtgz := filepath.Join(dir, "a.mdt.gz")
	if err := WriteMDTGZFile(mdtgz, tr, 8); err != nil {
		t.Fatal(err)
	}
	xyzt := filepath.Join(dir, "a.xyzt")
	if err := WriteXYZTFile(xyzt, tr); err != nil {
		t.Fatal(err)
	}
	xyztgz := filepath.Join(dir, "a.xyzt.gz")
	f, err := os.Create(xyztgz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := WriteXYZT(zw, tr); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{mdt, mdtgz, xyzt, xyztgz} {
		src, err := OpenSource(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		frames := drain(t, src)
		if err := src.Close(); err != nil {
			t.Fatalf("%s: close: %v", path, err)
		}
		if len(frames) != tr.NFrames() {
			t.Fatalf("%s: %d frames, want %d", path, len(frames), tr.NFrames())
		}
		exact := strings.Contains(path, ".mdt")
		for i, fr := range frames {
			if len(fr.Coords) != tr.NAtoms {
				t.Fatalf("%s: frame %d has %d atoms", path, i, len(fr.Coords))
			}
			if exact && fr.Coords[1] != tr.Frames[i].Coords[1] {
				t.Fatalf("%s: frame %d coords differ", path, i)
			}
		}
	}

	if _, err := OpenSource(filepath.Join(dir, "a.pdb")); err == nil {
		t.Fatal("unsupported extension accepted")
	}
	if _, err := OpenSource(filepath.Join(dir, "missing.mdt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// FileRef learns shapes from headers (MDT) or counting scans (text,
// gzip), and rejects an .mdt whose header overstates its frame count —
// the hostile-header case that would otherwise size downstream
// allocations.
func TestFileRefShapes(t *testing.T) {
	tr := streamTestTraj(4, 6)
	dir := t.TempDir()
	mdt := filepath.Join(dir, "b.mdt")
	if err := WriteMDTFile(mdt, tr, 8); err != nil {
		t.Fatal(err)
	}
	xyzt := filepath.Join(dir, "b.xyzt")
	if err := WriteXYZTFile(xyzt, tr); err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "b.mdt.gz")
	if err := WriteMDTGZFile(gz, tr, 8); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{mdt, xyzt, gz} {
		r, err := FileRef(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if r.NAtoms() != 4 || r.NFrames() != 6 {
			t.Fatalf("%s: shape %d×%d, want 4×6", path, r.NAtoms(), r.NFrames())
		}
		loaded, err := r.Load()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if loaded.NFrames() != 6 {
			t.Fatalf("%s: loaded %d frames", path, loaded.NFrames())
		}
	}

	// Truncate the MDT payload: the stat check must reject it up front.
	raw, err := os.ReadFile(mdt)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "trunc.mdt")
	if err := os.WriteFile(bad, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FileRef(bad); err == nil {
		t.Fatal("truncated mdt accepted")
	}

	// A header whose claimed shape overflows int64 arithmetic
	// (nAtoms·nFrames·prec ≈ 2⁶⁹) must be rejected, never wrapped into
	// a plausible size.
	hostile := append([]byte("MDT1"), 8, 0, 0,
		0xff, 0xff, 0xff, 0xff, // nAtoms = 2³²−1
		0xff, 0xff, 0xff, 0xff) // nFrames = 2³²−1
	overflow := filepath.Join(dir, "overflow.mdt")
	if err := os.WriteFile(overflow, hostile, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FileRef(overflow); err == nil {
		t.Fatal("overflowing header accepted by FileRef")
	}
	if _, err := DecodeMDT(hostile); err == nil {
		t.Fatal("overflowing header accepted by DecodeMDT")
	}
}

// XYZT parse errors must name the offending line (and, through
// ReadXYZTFile, the file): a bad float mid-file is reported at its
// exact position.
func TestXYZTErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the expected error
	}{
		{"bad-count", "x\n", "line 1: bad atom count"},
		{"bad-time", "1\nt=abc\n0 0 0\n", "line 2: bad time"},
		// Frame 2's second atom (line 8) has a malformed z coordinate.
		{"bad-float-mid-file", "2\nt=0 n\n0 0 0\n1 1 1\n2\nt=1 n\n0 0 0\n1 1 oops\n", `line 8: bad coordinate "oops"`},
		{"short-coord-line", "1\nt=0\n0 0\n", "line 3: want 3 coordinates"},
		{"truncated-frame", "2\nt=0\n0 0 0\n", "line 3: truncated frame (1/2 atoms)"},
		{"mismatched-count", "1\nt=0\n0 0 0\n2\nt=1\n0 0 0\n0 0 0\n", "line 4: frame atom count 2 differs from 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadXYZT(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	// The file path is part of the error when reading from disk.
	path := filepath.Join(t.TempDir(), "bad.xyzt")
	if err := os.WriteFile(path, []byte("1\nt=0\n0 0 nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadXYZTFile(path)
	if err == nil {
		t.Fatal("malformed file accepted")
	}
	if !strings.Contains(err.Error(), "bad.xyzt") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("file error %q lacks path or line", err)
	}
}

// A stream ref that yields a different frame count than declared is an
// error, not a silent truncation.
func TestWindowsValidateDeclaredShape(t *testing.T) {
	tr := streamTestTraj(2, 4)
	for _, declared := range []int{3, 5} {
		r, err := NewStreamRef("lie", 2, declared, func() (FrameSource, error) {
			return SourceOf(tr), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		it := r.Windows(2)
		var iterErr error
		for {
			_, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				iterErr = err
				break
			}
		}
		it.Close()
		if iterErr == nil {
			t.Fatalf("declared=%d actual=4: no error", declared)
		}
		if !strings.Contains(iterErr.Error(), "declares") {
			t.Fatalf("declared=%d: unexpected error %v", declared, iterErr)
		}
	}
}

// MultiSource concatenates blobs transparently and enforces the atom
// count across chunks.
func TestMultiSource(t *testing.T) {
	tr := streamTestTraj(3, 5)
	var blobs [][]byte
	for i := 0; i < 5; i += 2 {
		end := i + 2
		if end > 5 {
			end = 5
		}
		part := &Trajectory{Name: "p", NAtoms: 3, Frames: tr.Frames[i:end]}
		blob, err := EncodeMDT(part, 8)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	next := 0
	src := MultiSource(3, func() (FrameSource, error) {
		if next >= len(blobs) {
			return nil, nil
		}
		tr, err := DecodeMDT(blobs[next])
		next++
		if err != nil {
			return nil, err
		}
		return SourceOf(tr), nil
	})
	frames := drain(t, src)
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("%d frames, want 5", len(frames))
	}
	for i, f := range frames {
		for a := range f.Coords {
			if f.Coords[a] != tr.Frames[i].Coords[a] {
				t.Fatalf("frame %d atom %d differs", i, a)
			}
		}
	}

	// An atom-count mismatch inside the chain is detected.
	bad := MultiSource(4, func() (FrameSource, error) {
		return SourceOf(streamTestTraj(3, 1)), nil
	})
	if _, err := bad.NextFrame(); err == nil {
		t.Fatal("mismatched chunk accepted")
	}
	bad.Close()
}

// SkipFrames positions an MDT reader without unbounded allocation and
// EncodeMDTWindow's generic path uses it.
func TestMDTSkipFrames(t *testing.T) {
	tr := streamTestTraj(2, 6)
	blob, err := EncodeMDT(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMDTReader(newByteReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.SkipFrames(4); err != nil {
		t.Fatal(err)
	}
	f, err := mr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Time != tr.Frames[4].Time {
		t.Fatalf("frame after skip has time %v, want %v", f.Time, tr.Frames[4].Time)
	}
	// Reading to EOF still verifies the checksum (skip feeds the CRC).
	if _, err := mr.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := mr.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
}

// newByteReader avoids importing bytes in this file's top-level API
// examples.
func newByteReader(b []byte) io.Reader {
	return &byteReader{b: b}
}

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// Ref naming: files without embedded names fall back to the path stem.
func TestRefNameFromPath(t *testing.T) {
	for path, want := range map[string]string{
		"/data/run7.mdt.gz": "run7",
		"walk.xyzt":         "walk",
		"/a/b/c.mdt":        "c",
	} {
		if got := refNameFromPath(path); got != want {
			t.Errorf("refNameFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}

func ExampleRef_Windows() {
	tr := New("demo", 1)
	for i := 0; i < 5; i++ {
		tr.Frames = append(tr.Frames, Frame{Time: float64(i), Coords: []linalg.Vec3{{float64(i), 0, 0}}})
	}
	it := MemRef(tr).Windows(2)
	defer it.Close()
	for {
		w, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		fmt.Printf("window at %d: %d frames\n", w.Start, w.NFrames())
	}
	// Output:
	// window at 0: 2 frames
	// window at 2: 2 frames
	// window at 4: 1 frames
}
