package traj

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mdtask/internal/linalg"
)

// The XYZT text trajectory format: a sequence of frame blocks,
//
//	<natoms>
//	t=<time> <name>
//	<x> <y> <z>
//	... natoms coordinate lines ...
//
// in the spirit of the XYZ file family. It is intended for small files,
// debugging, and interchange; the MDT binary format is the primary one.
// Decoding is streaming frame by frame (xyztDecoder backs both
// ReadXYZT and the FrameSource returned by OpenSource), and every parse
// error reports the 1-based line it occurred on.

// xyztAllocCap bounds the coordinate capacity pre-allocated from a
// frame header's atom count. A header is attacker-controlled input: a
// claimed count of 2³¹ atoms must not allocate gigabytes before a
// single coordinate line has been seen, so allocation beyond the cap
// grows with the lines actually read.
const xyztAllocCap = 1 << 12

// WriteXYZT writes the trajectory as XYZT text.
func WriteXYZT(w io.Writer, t *Trajectory) error {
	bw := bufio.NewWriter(w)
	for _, f := range t.Frames {
		if len(f.Coords) != t.NAtoms {
			return fmt.Errorf("traj: WriteXYZT: %w", ErrShapeMismatch)
		}
		fmt.Fprintf(bw, "%d\nt=%g %s\n", t.NAtoms, f.Time, t.Name)
		for _, p := range f.Coords {
			fmt.Fprintf(bw, "%.8g %.8g %.8g\n", p[0], p[1], p[2])
		}
	}
	return bw.Flush()
}

// xyztDecoder incrementally parses XYZT frame blocks.
type xyztDecoder struct {
	sc   *bufio.Scanner
	line int
	// nAtoms is the atom count fixed by the first frame (-1 until then).
	nAtoms int
	name   string
}

func newXYZTDecoder(r io.Reader) *xyztDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &xyztDecoder{sc: sc, nAtoms: -1}
}

// next returns the next non-blank line.
func (d *xyztDecoder) next() (string, bool) {
	for d.sc.Scan() {
		d.line++
		s := strings.TrimSpace(d.sc.Text())
		if s != "" {
			return s, true
		}
	}
	return "", false
}

// errf builds a position-stamped parse error.
func (d *xyztDecoder) errf(format string, args ...interface{}) error {
	return fmt.Errorf("traj: xyzt line %d: %s", d.line, fmt.Sprintf(format, args...))
}

// readFrame parses one frame block, returning io.EOF at a clean end of
// stream.
func (d *xyztDecoder) readFrame() (Frame, error) {
	hdr, ok := d.next()
	if !ok {
		if err := d.sc.Err(); err != nil {
			return Frame{}, fmt.Errorf("traj: xyzt line %d: %w", d.line, err)
		}
		return Frame{}, io.EOF
	}
	hdrLine := d.line
	n, err := strconv.Atoi(hdr)
	if err != nil || n < 0 {
		return Frame{}, d.errf("bad atom count %q", hdr)
	}
	meta, ok := d.next()
	if !ok {
		return Frame{}, d.errf("missing frame comment line")
	}
	var tm float64
	fields := strings.Fields(meta)
	if len(fields) > 0 && strings.HasPrefix(fields[0], "t=") {
		tm, err = strconv.ParseFloat(fields[0][2:], 64)
		if err != nil {
			return Frame{}, d.errf("bad time %q", fields[0])
		}
		if d.nAtoms < 0 && len(fields) > 1 {
			d.name = strings.Join(fields[1:], " ")
		}
	}
	if d.nAtoms < 0 {
		d.nAtoms = n
	} else if n != d.nAtoms {
		return Frame{}, fmt.Errorf("traj: xyzt line %d: frame atom count %d differs from %d", hdrLine, n, d.nAtoms)
	}
	coords := make([]linalg.Vec3, 0, min(n, xyztAllocCap))
	for i := 0; i < n; i++ {
		cl, ok := d.next()
		if !ok {
			if err := d.sc.Err(); err != nil {
				return Frame{}, fmt.Errorf("traj: xyzt line %d: %w", d.line, err)
			}
			return Frame{}, d.errf("truncated frame (%d/%d atoms)", i, n)
		}
		parts := strings.Fields(cl)
		if len(parts) < 3 {
			return Frame{}, d.errf("want 3 coordinates, got %d", len(parts))
		}
		var p linalg.Vec3
		for k := 0; k < 3; k++ {
			p[k], err = strconv.ParseFloat(parts[k], 64)
			if err != nil {
				return Frame{}, d.errf("bad coordinate %q", parts[k])
			}
		}
		coords = append(coords, p)
	}
	return Frame{Time: tm, Coords: coords}, nil
}

// ReadXYZT parses an XYZT stream into a trajectory. The atom count of
// every frame must match the first frame's; parse errors include the
// 1-based line number of the offending input.
func ReadXYZT(r io.Reader) (*Trajectory, error) {
	d := newXYZTDecoder(r)
	var t *Trajectory
	for {
		f, err := d.readFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if t == nil {
			t = New(d.name, d.nAtoms)
		}
		t.Frames = append(t.Frames, f)
	}
	if t == nil {
		t = New("", 0)
	}
	return t, nil
}

// xyztSource adapts the streaming decoder to FrameSource. NAtoms is -1
// until the first frame fixes it (an empty stream reports 0).
type xyztSource struct {
	d       *xyztDecoder
	path    string
	closers []io.Closer
	done    bool
}

func newXYZTSource(r io.Reader, path string, closers []io.Closer) *xyztSource {
	return &xyztSource{d: newXYZTDecoder(r), path: path, closers: closers}
}

func (s *xyztSource) NextFrame() (Frame, error) {
	if s.done {
		return Frame{}, io.EOF
	}
	f, err := s.d.readFrame()
	if err == io.EOF {
		s.done = true
		return Frame{}, io.EOF
	}
	if err != nil {
		return Frame{}, fmt.Errorf("traj: %s: %w", s.path, err)
	}
	return f, nil
}

func (s *xyztSource) NAtoms() int {
	if s.d.nAtoms < 0 {
		return 0
	}
	return s.d.nAtoms
}

func (s *xyztSource) Close() error {
	s.done = true
	var first error
	for i := len(s.closers) - 1; i >= 0; i-- {
		if err := s.closers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// WriteXYZTFile writes the trajectory to path as XYZT text.
func WriteXYZTFile(path string, t *Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteXYZT(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadXYZTFile reads a trajectory from an XYZT text file; errors carry
// the path and the line number of malformed input.
func ReadXYZTFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadXYZT(f)
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	return t, nil
}
