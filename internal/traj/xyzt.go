package traj

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mdtask/internal/linalg"
)

// The XYZT text trajectory format: a sequence of frame blocks,
//
//	<natoms>
//	t=<time> <name>
//	<x> <y> <z>
//	... natoms coordinate lines ...
//
// in the spirit of the XYZ file family. It is intended for small files,
// debugging, and interchange; the MDT binary format is the primary one.

// WriteXYZT writes the trajectory as XYZT text.
func WriteXYZT(w io.Writer, t *Trajectory) error {
	bw := bufio.NewWriter(w)
	for _, f := range t.Frames {
		if len(f.Coords) != t.NAtoms {
			return fmt.Errorf("traj: WriteXYZT: %w", ErrShapeMismatch)
		}
		fmt.Fprintf(bw, "%d\nt=%g %s\n", t.NAtoms, f.Time, t.Name)
		for _, p := range f.Coords {
			fmt.Fprintf(bw, "%.8g %.8g %.8g\n", p[0], p[1], p[2])
		}
	}
	return bw.Flush()
}

// ReadXYZT parses an XYZT stream into a trajectory. The atom count of
// every frame must match the first frame's.
func ReadXYZT(r io.Reader) (*Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var t *Trajectory
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(hdr)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("traj: xyzt line %d: bad atom count %q", line, hdr)
		}
		meta, ok := next()
		if !ok {
			return nil, fmt.Errorf("traj: xyzt line %d: missing frame comment line", line)
		}
		var tm float64
		name := ""
		fields := strings.Fields(meta)
		if len(fields) > 0 && strings.HasPrefix(fields[0], "t=") {
			tm, err = strconv.ParseFloat(fields[0][2:], 64)
			if err != nil {
				return nil, fmt.Errorf("traj: xyzt line %d: bad time %q", line, fields[0])
			}
			if len(fields) > 1 {
				name = strings.Join(fields[1:], " ")
			}
		}
		if t == nil {
			t = New(name, n)
		} else if n != t.NAtoms {
			return nil, fmt.Errorf("traj: xyzt line %d: frame atom count %d differs from %d", line, n, t.NAtoms)
		}
		coords := make([]linalg.Vec3, n)
		for i := 0; i < n; i++ {
			cl, ok := next()
			if !ok {
				return nil, fmt.Errorf("traj: xyzt line %d: truncated frame (%d/%d atoms)", line, i, n)
			}
			parts := strings.Fields(cl)
			if len(parts) < 3 {
				return nil, fmt.Errorf("traj: xyzt line %d: want 3 coordinates, got %d", line, len(parts))
			}
			for k := 0; k < 3; k++ {
				coords[i][k], err = strconv.ParseFloat(parts[k], 64)
				if err != nil {
					return nil, fmt.Errorf("traj: xyzt line %d: bad coordinate %q", line, parts[k])
				}
			}
		}
		t.Frames = append(t.Frames, Frame{Time: tm, Coords: coords})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traj: xyzt: %w", err)
	}
	if t == nil {
		t = New("", 0)
	}
	return t, nil
}

// WriteXYZTFile writes the trajectory to path as XYZT text.
func WriteXYZTFile(path string, t *Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteXYZT(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadXYZTFile reads a trajectory from an XYZT text file.
func ReadXYZTFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadXYZT(f)
}
