package traj

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"mdtask/internal/linalg"
)

// The MDT binary trajectory format.
//
// Layout (little endian):
//
//	magic   [4]byte  "MDT1"
//	prec    uint8    4 (float32 coords) or 8 (float64 coords)
//	nameLen uint16
//	name    [nameLen]byte
//	nAtoms  uint32
//	nFrames uint32
//	frames  nFrames × { time float64; coords nAtoms×3×prec }
//	crc     uint32   IEEE CRC-32 over everything after the magic
//
// The frame payload streams, so readers can process trajectories larger
// than memory one frame at a time.

var mdtMagic = [4]byte{'M', 'D', 'T', '1'}

// Errors returned by the MDT reader.
var (
	ErrBadMagic     = errors.New("traj: not an MDT file (bad magic)")
	ErrBadPrecision = errors.New("traj: unsupported MDT precision")
	ErrChecksum     = errors.New("traj: MDT checksum mismatch")
	ErrTruncated    = errors.New("traj: MDT file truncated")
)

// MDTWriter streams a trajectory to an MDT file.
type MDTWriter struct {
	w       *bufio.Writer
	crc     uint32
	prec    int
	nAtoms  int
	written uint32
	buf     []byte
}

// NewMDTWriter writes the MDT header and returns a writer for the frame
// payload. prec must be 4 or 8. nFrames must be the exact number of
// frames that will be written.
func NewMDTWriter(w io.Writer, name string, nAtoms, nFrames, prec int) (*MDTWriter, error) {
	if prec != 4 && prec != 8 {
		return nil, fmt.Errorf("%w: %d", ErrBadPrecision, prec)
	}
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("traj: trajectory name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriter(w)
	mw := &MDTWriter{w: bw, prec: prec, nAtoms: nAtoms}
	if _, err := bw.Write(mdtMagic[:]); err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, 16+len(name))
	hdr = append(hdr, byte(prec))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(nAtoms))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(nFrames))
	mw.crc = crc32.Update(mw.crc, crc32.IEEETable, hdr)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return mw, nil
}

// WriteFrame appends one frame to the payload.
func (mw *MDTWriter) WriteFrame(f Frame) error {
	if len(f.Coords) != mw.nAtoms {
		return fmt.Errorf("%w: got %d coords, want %d", ErrShapeMismatch, len(f.Coords), mw.nAtoms)
	}
	need := 8 + len(f.Coords)*3*mw.prec
	if cap(mw.buf) < need {
		mw.buf = make([]byte, 0, need)
	}
	b := mw.buf[:0]
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Time))
	for _, p := range f.Coords {
		for k := 0; k < 3; k++ {
			if mw.prec == 4 {
				b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(p[k])))
			} else {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p[k]))
			}
		}
	}
	mw.buf = b
	mw.crc = crc32.Update(mw.crc, crc32.IEEETable, b)
	if _, err := mw.w.Write(b); err != nil {
		return err
	}
	mw.written++
	return nil
}

// Close writes the trailing checksum and flushes. It does not close the
// underlying writer.
func (mw *MDTWriter) Close() error {
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], mw.crc)
	if _, err := mw.w.Write(tail[:]); err != nil {
		return err
	}
	return mw.w.Flush()
}

// MDTReader streams frames from an MDT file.
type MDTReader struct {
	r       *bufio.Reader
	crc     uint32
	prec    int
	name    string
	nAtoms  int
	nFrames int
	read    int
	// headerLen is the byte length of everything before the first
	// frame (magic + fixed fields + name).
	headerLen int
	// skipCRC disables trailing-checksum verification after a seek has
	// bypassed part of the payload (the accumulator no longer covers
	// the whole stream).
	skipCRC bool
	buf     []byte
}

// NewMDTReader parses the MDT header from r.
func NewMDTReader(r io.Reader) (*MDTReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if magic != mdtMagic {
		return nil, ErrBadMagic
	}
	mr := &MDTReader{r: br}
	fixed := make([]byte, 3)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	mr.crc = crc32.Update(mr.crc, crc32.IEEETable, fixed)
	mr.prec = int(fixed[0])
	if mr.prec != 4 && mr.prec != 8 {
		return nil, fmt.Errorf("%w: %d", ErrBadPrecision, mr.prec)
	}
	nameLen := binary.LittleEndian.Uint16(fixed[1:3])
	rest := make([]byte, int(nameLen)+8)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	mr.crc = crc32.Update(mr.crc, crc32.IEEETable, rest)
	mr.name = string(rest[:nameLen])
	mr.nAtoms = int(binary.LittleEndian.Uint32(rest[nameLen:]))
	mr.nFrames = int(binary.LittleEndian.Uint32(rest[nameLen+4:]))
	mr.headerLen = 4 + 3 + int(nameLen) + 8
	return mr, nil
}

// Name returns the trajectory name stored in the header.
func (mr *MDTReader) Name() string { return mr.name }

// NAtoms returns the per-frame atom count.
func (mr *MDTReader) NAtoms() int { return mr.nAtoms }

// NFrames returns the number of frames in the file.
func (mr *MDTReader) NFrames() int { return mr.nFrames }

// mdtChunk bounds how many payload bytes are buffered at a time while
// decoding or skipping a frame. Header fields are attacker-controlled:
// a claimed frame of 2³² atoms must not allocate its whole payload up
// front — chunked reads make a truncated hostile file fail after the
// bytes actually present, with memory bounded by the chunk size plus
// the coordinates genuinely decoded.
const mdtChunk = 1 << 16

// ReadFrame reads the next frame. After the final frame it verifies the
// trailing checksum and returns io.EOF on the following call.
func (mr *MDTReader) ReadFrame() (Frame, error) {
	if mr.read >= mr.nFrames {
		var tail [4]byte
		if _, err := io.ReadFull(mr.r, tail[:]); err != nil {
			return Frame{}, fmt.Errorf("%w: missing checksum: %v", ErrTruncated, err)
		}
		if !mr.skipCRC && binary.LittleEndian.Uint32(tail[:]) != mr.crc {
			return Frame{}, ErrChecksum
		}
		return Frame{}, io.EOF
	}
	var timeBuf [8]byte
	if _, err := io.ReadFull(mr.r, timeBuf[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: frame %d: %v", ErrTruncated, mr.read, err)
	}
	mr.crc = crc32.Update(mr.crc, crc32.IEEETable, timeBuf[:])
	f := Frame{
		Time:   math.Float64frombits(binary.LittleEndian.Uint64(timeBuf[:])),
		Coords: make([]linalg.Vec3, 0, min(mr.nAtoms, mdtChunk/24)),
	}
	// Decode the coordinate payload in bounded chunks, each a whole
	// number of components.
	compSize := mr.prec
	perChunk := (mdtChunk / compSize) * compSize
	if cap(mr.buf) < perChunk {
		mr.buf = make([]byte, perChunk)
	}
	remaining := mr.nAtoms * 3 * compSize
	var comp [3]float64
	ci := 0
	for remaining > 0 {
		n := remaining
		if n > perChunk {
			n = perChunk
		}
		b := mr.buf[:n]
		if _, err := io.ReadFull(mr.r, b); err != nil {
			return Frame{}, fmt.Errorf("%w: frame %d: %v", ErrTruncated, mr.read, err)
		}
		mr.crc = crc32.Update(mr.crc, crc32.IEEETable, b)
		for off := 0; off < n; off += compSize {
			if mr.prec == 4 {
				comp[ci] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[off:])))
			} else {
				comp[ci] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			}
			ci++
			if ci == 3 {
				f.Coords = append(f.Coords, linalg.Vec3{comp[0], comp[1], comp[2]})
				ci = 0
			}
		}
		remaining -= n
	}
	mr.read++
	return f, nil
}

// SkipFrames reads and discards the next n frames (bounded memory, CRC
// still folded in so a subsequent full read to EOF verifies). It stops
// early without error if fewer than n frames remain.
func (mr *MDTReader) SkipFrames(n int) error {
	frameBytes := 8 + mr.nAtoms*3*mr.prec
	if cap(mr.buf) < mdtChunk {
		mr.buf = make([]byte, mdtChunk)
	}
	for ; n > 0 && mr.read < mr.nFrames; n-- {
		remaining := frameBytes
		for remaining > 0 {
			c := remaining
			if c > mdtChunk {
				c = mdtChunk
			}
			b := mr.buf[:c]
			if _, err := io.ReadFull(mr.r, b); err != nil {
				return fmt.Errorf("%w: frame %d: %v", ErrTruncated, mr.read, err)
			}
			mr.crc = crc32.Update(mr.crc, crc32.IEEETable, b)
			remaining -= c
		}
		mr.read++
	}
	return nil
}

// ReadAll reads all remaining frames and verifies the checksum.
func (mr *MDTReader) ReadAll() (*Trajectory, error) {
	t := New(mr.name, mr.nAtoms)
	for {
		f, err := mr.ReadFrame()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Frames = append(t.Frames, f)
	}
}

// WriteMDTFile writes the whole trajectory to path with the given
// coordinate precision (4 or 8 bytes).
func WriteMDTFile(path string, t *Trajectory, prec int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	mw, err := NewMDTWriter(f, t.Name, t.NAtoms, len(t.Frames), prec)
	if err != nil {
		f.Close()
		return err
	}
	for _, fr := range t.Frames {
		if err := mw.WriteFrame(fr); err != nil {
			f.Close()
			return err
		}
	}
	if err := mw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodeMDT serializes a whole trajectory to MDT bytes with the given
// coordinate precision (4 or 8 bytes) — the in-memory counterpart of
// WriteMDTFile, used wherever trajectories cross a process boundary
// (pilot staging blobs, fleet input payloads).
func EncodeMDT(t *Trajectory, prec int) ([]byte, error) {
	var buf sliceWriter
	w, err := NewMDTWriter(&buf, t.Name, t.NAtoms, len(t.Frames), prec)
	if err != nil {
		return nil, err
	}
	for _, f := range t.Frames {
		if err := w.WriteFrame(f); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// impliedSize returns the exact byte length the header implies for the
// whole stream, or ok=false when the claimed shape cannot be expressed
// without int64 overflow (necessarily hostile: it would exceed any
// real payload by orders of magnitude).
func (mr *MDTReader) impliedSize() (int64, bool) {
	frameBytes := 8 + int64(mr.nAtoms)*3*int64(mr.prec) // ≤ 8 + 2³²·24, no overflow
	fixed := int64(mr.headerLen) + 4
	if mr.nFrames > 0 && frameBytes > (math.MaxInt64-fixed)/int64(mr.nFrames) {
		return 0, false
	}
	return fixed + int64(mr.nFrames)*frameBytes, true
}

// DecodeMDT deserializes MDT bytes back into a trajectory, verifying
// the trailing checksum. The payload length the header implies is
// validated against len(b) up front (with overflow-checked arithmetic),
// so a hostile header claiming billions of frames or atoms fails before
// any frame is decoded.
func DecodeMDT(b []byte) (*Trajectory, error) {
	mr, err := NewMDTReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	want, ok := mr.impliedSize()
	if !ok || int64(len(b)) != want {
		return nil, fmt.Errorf("%w: payload is %d bytes, header implies %d", ErrTruncated, len(b), want)
	}
	return mr.ReadAll()
}

// sliceWriter is a minimal append-based io.Writer over a byte slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// ReadMDTFile reads a whole trajectory from path.
func ReadMDTFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mr, err := NewMDTReader(f)
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	t, err := mr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	return t, nil
}
