package traj

import (
	"compress/gzip"
	"fmt"
	"os"
)

// Gzip-compressed MDT convenience I/O (.mdt.gz): the "optimizing
// filesystem usage / reducing data transfer sizes" item from the
// paper's future work (§6) applied to trajectory storage.

// WriteMDTGZFile writes the trajectory as gzip-compressed MDT.
func WriteMDTGZFile(path string, t *Trajectory, prec int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw, err := gzip.NewWriterLevel(f, gzip.BestSpeed)
	if err != nil {
		f.Close()
		return err
	}
	mw, err := NewMDTWriter(zw, t.Name, t.NAtoms, len(t.Frames), prec)
	if err != nil {
		f.Close()
		return err
	}
	for _, fr := range t.Frames {
		if err := mw.WriteFrame(fr); err != nil {
			f.Close()
			return err
		}
	}
	if err := mw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadMDTGZFile reads a gzip-compressed MDT trajectory.
func ReadMDTGZFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	defer zr.Close()
	mr, err := NewMDTReader(zr)
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	t, err := mr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traj: %s: %w", path, err)
	}
	return t, nil
}
