package traj

import (
	"math"
	"sync/atomic"

	"mdtask/internal/balltree"
	"mdtask/internal/linalg"
)

// Packed is the contiguous, precomputed frame representation the pruned
// Hausdorff kernel consumes: every frame's coordinates flattened into
// one cache-friendly []float64 (frame-major, xyz triples), plus the
// per-frame statistics the kernel's pruning bounds need — centroids,
// radii of gyration, and the dRMS between consecutive frames. All of it
// is computed once per trajectory in O(frames·atoms) instead of being
// re-derived inside every O(frames²) trajectory comparison.
type Packed struct {
	NAtoms  int
	NFrames int
	// Coords holds the frames back to back: frame i occupies
	// Coords[i*NAtoms*3 : (i+1)*NAtoms*3] as x,y,z triples in atom order.
	Coords []float64
	// Centroids[i] is the arithmetic-mean position of frame i.
	Centroids []linalg.Vec3
	// RadGyr[i] is the radius of gyration of frame i about its centroid:
	// sqrt(mean |xⱼ − centroid|²).
	RadGyr []float64
	// StepDRMS[i] is dRMS(frame i−1, frame i), with StepDRMS[0] = 0: the
	// temporal-coherence Lipschitz constants the pruned kernel chains
	// through the dRMS triangle inequality.
	StepDRMS []float64

	// tree caches the ball tree over the frames' (centroid, rg)
	// signatures, built on first use by FrameTree(). Like the packed
	// cache on Trajectory, racing callers at worst build twice.
	tree atomic.Pointer[balltree.FrameTree]
}

// FrameTree returns the ball tree over the packed frames' 4-D
// signatures (centroid x, y, z, radius of gyration) — the metric index
// the indexed Hausdorff kernel descends. It is built from the already
// computed per-frame statistics in O(frames · log frames) on first use
// and cached; windows carry their own Packed, so streamed tiles get
// window-local trees with no extra residency.
func (p *Packed) FrameTree() *balltree.FrameTree {
	if t := p.tree.Load(); t != nil {
		return t
	}
	pts := make([]balltree.Point4, p.NFrames)
	for i := range pts {
		c := p.Centroids[i]
		pts[i] = balltree.Point4{c[0], c[1], c[2], p.RadGyr[i]}
	}
	t := balltree.NewFrameTree(pts, 0)
	p.tree.Store(t)
	return t
}

// Row returns frame i's packed coordinate row (shared, not copied).
func (p *Packed) Row(i int) []float64 {
	w := p.NAtoms * 3
	return p.Coords[i*w : (i+1)*w]
}

// PackFrames builds the packed representation of raw frame views. All
// frames must have nAtoms coordinates.
func PackFrames(frames [][]linalg.Vec3, nAtoms int) *Packed {
	nf := len(frames)
	p := &Packed{
		NAtoms:    nAtoms,
		NFrames:   nf,
		Coords:    make([]float64, nf*nAtoms*3),
		Centroids: make([]linalg.Vec3, nf),
		RadGyr:    make([]float64, nf),
		StepDRMS:  make([]float64, nf),
	}
	for i, coords := range frames {
		row := p.Coords[i*nAtoms*3 : (i+1)*nAtoms*3]
		for j, pt := range coords {
			row[j*3] = pt[0]
			row[j*3+1] = pt[1]
			row[j*3+2] = pt[2]
		}
		c := linalg.Centroid(coords)
		p.Centroids[i] = c
		if nAtoms > 0 {
			var s float64
			for _, pt := range coords {
				s += linalg.Dist2(pt, c)
			}
			p.RadGyr[i] = math.Sqrt(s / float64(nAtoms))
		}
		if i > 0 {
			d, _ := linalg.DRMSWithin(p.Row(i-1), row, math.Inf(1))
			p.StepDRMS[i] = d
		}
	}
	return p
}

// Pack builds the packed representation of a trajectory.
func Pack(t *Trajectory) *Packed {
	frames := make([][]linalg.Vec3, len(t.Frames))
	for i := range t.Frames {
		frames[i] = t.Frames[i].Coords
	}
	return PackFrames(frames, t.NAtoms)
}

// Packed returns the trajectory's packed representation, computing it on
// first use and caching it. The cache is safe for concurrent use (racing
// callers at worst pack twice) and is invalidated when the frame count
// changes; mutating frame coordinates in place after the first call is
// not supported.
func (t *Trajectory) Packed() *Packed {
	if p := t.packed.Load(); p != nil && p.NFrames == len(t.Frames) {
		return p
	}
	p := Pack(t)
	t.packed.Store(p)
	return p
}
