package traj

import (
	"math"
	"testing"

	"mdtask/internal/linalg"
)

func packTestTrajectory(t *testing.T) *Trajectory {
	t.Helper()
	tr := New("p", 3)
	frames := [][]linalg.Vec3{
		{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}},
		{{0, 1, 0}, {1, 1, 0}, {2, 1, 0}},
		{{3, 1, 2}, {4, 1, 2}, {5, 1, 2}},
	}
	for i, f := range frames {
		if err := tr.AppendFrame(Frame{Time: float64(i), Coords: f}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestPackLayoutAndStats(t *testing.T) {
	tr := packTestTrajectory(t)
	p := Pack(tr)
	if p.NAtoms != 3 || p.NFrames != 3 {
		t.Fatalf("packed shape %dx%d", p.NFrames, p.NAtoms)
	}
	if len(p.Coords) != 3*3*3 {
		t.Fatalf("coords len %d", len(p.Coords))
	}
	for i, f := range tr.Frames {
		row := p.Row(i)
		for j, pt := range f.Coords {
			for k := 0; k < 3; k++ {
				if row[j*3+k] != pt[k] {
					t.Fatalf("frame %d atom %d axis %d: packed %v != %v", i, j, k, row[j*3+k], pt[k])
				}
			}
		}
		c := linalg.Centroid(f.Coords)
		if p.Centroids[i] != c {
			t.Errorf("frame %d centroid %v != %v", i, p.Centroids[i], c)
		}
		var s float64
		for _, pt := range f.Coords {
			s += linalg.Dist2(pt, c)
		}
		if want := math.Sqrt(s / 3); p.RadGyr[i] != want {
			t.Errorf("frame %d rg %v != %v", i, p.RadGyr[i], want)
		}
	}
	if p.StepDRMS[0] != 0 {
		t.Errorf("StepDRMS[0] = %v", p.StepDRMS[0])
	}
	for i := 1; i < 3; i++ {
		want := linalg.DRMS(tr.Frames[i-1].Coords, tr.Frames[i].Coords)
		if p.StepDRMS[i] != want {
			t.Errorf("StepDRMS[%d] = %v, want %v", i, p.StepDRMS[i], want)
		}
	}
}

func TestPackedCacheAndInvalidation(t *testing.T) {
	tr := packTestTrajectory(t)
	p1 := tr.Packed()
	if p2 := tr.Packed(); p2 != p1 {
		t.Error("Packed not cached")
	}
	if err := tr.AppendFrame(Frame{Time: 3, Coords: []linalg.Vec3{{9, 9, 9}, {8, 8, 8}, {7, 7, 7}}}); err != nil {
		t.Fatal(err)
	}
	p3 := tr.Packed()
	if p3 == p1 {
		t.Fatal("Packed cache not invalidated by AppendFrame")
	}
	if p3.NFrames != 4 {
		t.Fatalf("repacked NFrames = %d", p3.NFrames)
	}
}

func TestPackEmptyAndZeroAtoms(t *testing.T) {
	empty := New("e", 5)
	p := empty.Packed()
	if p.NFrames != 0 || len(p.Coords) != 0 {
		t.Fatalf("empty pack: %+v", p)
	}
	zero := New("z", 0)
	for i := 0; i < 2; i++ {
		if err := zero.AppendFrame(Frame{Coords: nil}); err != nil {
			t.Fatal(err)
		}
	}
	pz := zero.Packed()
	if pz.NFrames != 2 || pz.RadGyr[0] != 0 || pz.StepDRMS[1] != 0 {
		t.Fatalf("zero-atom pack: %+v", pz)
	}
	if got := len(pz.Row(1)); got != 0 {
		t.Fatalf("zero-atom row len %d", got)
	}
}
