// Package sim provides a small discrete-event simulation core: a virtual
// clock and an event queue. The cluster package builds its machine and
// framework performance models on top of it; nothing in this package
// knows about clusters or tasks.
package sim

import "container/heap"

// Time is virtual time in seconds.
type Time float64

// event is a scheduled callback. Seq breaks ties so that events
// scheduled at the same instant fire in scheduling order.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is ready
// to use at time zero.
type Engine struct {
	now   Time
	queue eventQueue
	seq   int64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay virtual seconds. Negative delays are
// clamped to zero (fire "now", after already-queued events at now).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t; times in the past are clamped
// to now.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// Step fires the next event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
