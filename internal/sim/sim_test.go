package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if got := e.Run(); got != 3 {
		t.Errorf("final time = %v, want 3", got)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {
		e.Schedule(-10, func() {
			if e.Now() != 5 {
				t.Errorf("clamped event at %v, want 5", e.Now())
			}
		})
	})
	e.Run()
}

func TestAtInPastClamped(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {
		e.At(1, func() {
			if e.Now() != 5 {
				t.Errorf("past event at %v, want 5", e.Now())
			}
		})
	})
	e.Run()
}

func TestStepAndPending(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if !e.Step() || e.Now() != 1 || e.Pending() != 1 {
		t.Errorf("after one step: now=%v pending=%d", e.Now(), e.Pending())
	}
}
