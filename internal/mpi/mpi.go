// Package mpi is an MPI-like SPMD runtime: a fixed set of ranks run the
// same function concurrently (as goroutines) and communicate through
// typed point-to-point messages and collectives (Bcast, Scatter, Gather,
// Reduce, Allreduce, Barrier). It stands in for the paper's MPI4py
// baselines: the Leaflet Finder and PSA MPI implementations in this
// repository run unchanged semantics — rank-0 gathers, binomial-tree
// broadcast, static work partitioning — with per-operation byte
// accounting feeding the experiment harness.
package mpi

import (
	"fmt"
	"sync"

	"mdtask/internal/engine"
)

// message is one transfer between ranks.
type message struct {
	value interface{}
	bytes int64
}

// world is the shared state of one Run: the channel fabric and barrier.
type world struct {
	size    int
	p2p     []chan message // p2p[src*size+dst]
	coll    []chan message // separate fabric for collectives
	metrics *engine.Metrics

	bar struct {
		mu      sync.Mutex
		cond    *sync.Cond
		count   int
		gen     int
		aborted bool
	}

	abortOnce sync.Once
	abort     chan struct{}
}

// abortError unwinds a rank when the world has been aborted because a
// peer failed.
type abortError struct{ rank int }

func (e abortError) Error() string {
	return fmt.Sprintf("mpi: rank %d aborted: a peer rank failed", e.rank)
}

// Comm is one rank's communicator handle.
type Comm struct {
	w    *world
	rank int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// Run executes fn on size ranks concurrently and waits for all of them.
// It returns the first rank error; if a rank fails or panics the world
// is aborted so blocked peers unwind instead of deadlocking. The
// metrics sink may be nil.
func Run(size int, m *engine.Metrics, fn func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: world size must be >= 1, got %d", size)
	}
	if m == nil {
		m = &engine.Metrics{}
	}
	w := &world{
		size:    size,
		p2p:     make([]chan message, size*size),
		coll:    make([]chan message, size*size),
		metrics: m,
		abort:   make(chan struct{}),
	}
	for i := range w.p2p {
		w.p2p[i] = make(chan message, 8)
		w.coll[i] = make(chan message, 8)
	}
	w.bar.cond = sync.NewCond(&w.bar.mu)

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if ae, ok := v.(abortError); ok {
						errs[rank] = ae
						return
					}
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, v)
					w.doAbort()
				}
			}()
			if err := fn(&Comm{w: w, rank: rank}); err != nil {
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				w.doAbort()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if _, aborted := err.(abortError); !aborted {
				return err
			}
		}
	}
	// Only abort-unwinds (no root cause captured) — report the first.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// doAbort wakes every blocked rank with an abort panic.
func (w *world) doAbort() {
	w.abortOnce.Do(func() {
		close(w.abort)
		w.bar.mu.Lock()
		w.bar.aborted = true // release current and future barrier waiters
		w.bar.cond.Broadcast()
		w.bar.mu.Unlock()
	})
}

func (w *world) checkAbort(rank int) {
	select {
	case <-w.abort:
		panic(abortError{rank})
	default:
	}
}

// send transfers a message on the given fabric, respecting aborts.
func (c *Comm) send(fabric []chan message, dst int, msg message) {
	c.w.checkAbort(c.rank)
	select {
	case fabric[c.rank*c.w.size+dst] <- msg:
		c.w.metrics.AddShuffle(msg.bytes)
	case <-c.w.abort:
		panic(abortError{c.rank})
	}
}

func (c *Comm) recv(fabric []chan message, src int) message {
	c.w.checkAbort(c.rank)
	select {
	case msg := <-fabric[src*c.w.size+c.rank]:
		return msg
	case <-c.w.abort:
		panic(abortError{c.rank})
	}
}

// Send transfers value to rank dst (eager, buffered). bytes is the
// payload size used for accounting.
func (c *Comm) Send(dst int, value interface{}, bytes int64) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, c.w.size))
	}
	c.send(c.w.p2p, dst, message{value, bytes})
}

// Recv receives the next message from rank src.
func (c *Comm) Recv(src int) interface{} {
	if src < 0 || src >= c.w.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d (size %d)", src, c.w.size))
	}
	return c.recv(c.w.p2p, src).value
}

// Barrier blocks until every rank reaches it. If the world aborts
// (a peer failed), waiting and arriving ranks unwind instead of
// deadlocking on ranks that will never arrive.
func (c *Comm) Barrier() {
	b := &c.w.bar
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortError{c.rank})
	}
	gen := b.gen
	b.count++
	if b.count == c.w.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	aborted := b.aborted
	b.mu.Unlock()
	if aborted {
		panic(abortError{c.rank})
	}
}
