package mpi

import (
	"errors"
	mathrand "math/rand"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mdtask/internal/engine"
)

func TestRunBasics(t *testing.T) {
	var count int64
	err := Run(8, nil, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("ranks ran = %d", count)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, nil, func(*Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, "ping", 4)
			if got := c.Recv(1).(string); got != "pong" {
				t.Errorf("rank 0 got %q", got)
			}
		} else {
			if got := c.Recv(0).(string); got != "ping" {
				t.Errorf("rank 1 got %q", got)
			}
			c.Send(0, "pong", 4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrderingFIFO(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, i, 8)
			}
		} else {
			for i := 0; i < 5; i++ {
				if got := c.Recv(0).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllRootsAndSizes(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(args []reflect.Value, r *mathrand.Rand) {
			size := 1 + r.Intn(12)
			args[0] = reflect.ValueOf(size)
			args[1] = reflect.ValueOf(r.Intn(size))
			args[2] = reflect.ValueOf(r.Int())
		},
	}
	f := func(size, root, payload int) bool {
		ok := true
		err := Run(size, nil, func(c *Comm) error {
			v := -1
			if c.Rank() == root {
				v = payload
			}
			got := Bcast(c, root, v, 8)
			if got != payload {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestScatterGather(t *testing.T) {
	const size = 6
	err := Run(size, nil, func(c *Comm) error {
		var parts []int
		if c.Rank() == 2 {
			parts = []int{10, 11, 12, 13, 14, 15}
		}
		mine := Scatter(c, 2, parts, 8)
		if mine != 10+c.Rank() {
			t.Errorf("rank %d scattered %d", c.Rank(), mine)
		}
		gathered := Gather(c, 2, mine*2, 8)
		if c.Rank() == 2 {
			want := []int{20, 22, 24, 26, 28, 30}
			if !reflect.DeepEqual(gathered, want) {
				t.Errorf("gathered = %v", gathered)
			}
		} else if gathered != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), gathered)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const size = 7
	err := Run(size, nil, func(c *Comm) error {
		sum, isRoot := Reduce(c, 0, c.Rank()+1, 8, func(a, b int) int { return a + b })
		if c.Rank() == 0 {
			if !isRoot || sum != size*(size+1)/2 {
				t.Errorf("Reduce = %d, isRoot=%v", sum, isRoot)
			}
		} else if isRoot {
			t.Errorf("rank %d claims root", c.Rank())
		}
		all := Allreduce(c, c.Rank(), 8, func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		if all != size-1 {
			t.Errorf("Allreduce max = %d", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const size = 5
	err := Run(size, nil, func(c *Comm) error {
		parts := make([]int, size)
		for i := range parts {
			parts[i] = c.Rank()*100 + i
		}
		got := Alltoall(c, parts, 8)
		for src, v := range got {
			if v != src*100+c.Rank() {
				t.Errorf("rank %d from %d: %d", c.Rank(), src, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const size = 6
	var phase1 int64
	err := Run(size, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(5 * time.Millisecond) // straggler
		}
		atomic.AddInt64(&phase1, 1)
		c.Barrier()
		if got := atomic.LoadInt64(&phase1); got != size {
			t.Errorf("rank %d passed barrier with phase1=%d", c.Rank(), got)
		}
		c.Barrier() // reusable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsWorld(t *testing.T) {
	err := Run(4, nil, func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("rank 2 exploded")
		}
		// Other ranks block on a receive that will never be satisfied;
		// the abort must unwind them instead of deadlocking.
		c.Recv((c.Rank() + 1) % 4)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestRankPanicAbortsWorld(t *testing.T) {
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 crashed")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, "x", 1)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestScatterWrongLengthPanics(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			Scatter(c, 0, []int{1}, 8) // needs 2 parts
		} else {
			Scatter[int](c, 0, nil, 8)
		}
		return nil
	})
	if err == nil {
		t.Fatal("bad scatter accepted")
	}
}

func TestBlockRangeCoverage(t *testing.T) {
	for n := 0; n < 30; n++ {
		for size := 1; size <= 7; size++ {
			covered := make([]bool, n)
			prevHi := 0
			for r := 0; r < size; r++ {
				lo, hi := BlockRange(n, r, size)
				if lo != prevHi {
					t.Fatalf("n=%d size=%d rank=%d: gap at %d", n, size, r, lo)
				}
				for i := lo; i < hi; i++ {
					covered[i] = true
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d size=%d: coverage ends at %d", n, size, prevHi)
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("n=%d size=%d: item %d uncovered", n, size, i)
				}
			}
		}
	}
}

func TestByteAccounting(t *testing.T) {
	m := &engine.Metrics{}
	// Gather bytes are recorded as shuffle; Bcast as broadcast.
	err := Run(4, m, func(c *Comm) error {
		Bcast(c, 0, 1, 1000)
		Gather(c, 0, c.Rank(), 500)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.BytesBroadcast == 0 {
		t.Error("broadcast bytes not accounted")
	}
	if s.BytesShuffled == 0 {
		t.Error("gather bytes not accounted")
	}
}

func TestAllGatherLargePayloads(t *testing.T) {
	// Stress buffered fabric with larger worlds.
	const size = 16
	err := Run(size, nil, func(c *Comm) error {
		data := make([]int, 100)
		for i := range data {
			data[i] = c.Rank()
		}
		gathered := Gather(c, 0, data, 800)
		if c.Rank() == 0 {
			var ranks []int
			for src, d := range gathered {
				if d[0] != src {
					t.Errorf("payload from %d tagged %d", src, d[0])
				}
				ranks = append(ranks, d[0])
			}
			sort.Ints(ranks)
			for i, r := range ranks {
				if r != i {
					t.Errorf("missing rank payloads: %v", ranks)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
