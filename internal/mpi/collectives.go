package mpi

import "fmt"

// Collectives: every rank of the communicator must call the same
// collective with compatible arguments, as in MPI. All collectives use a
// fabric separate from point-to-point traffic so they cannot be confused
// with pending Sends.

// relRank maps rank onto the tree rooted at root.
func relRank(rank, root, size int) int { return (rank - root + size) % size }

func absRank(rel, root, size int) int { return (rel + root) % size }

// Bcast distributes value from root to every rank along a binomial tree
// (log2(P) rounds, like production MPI broadcast). Every rank returns
// the broadcast value; only root's input value is meaningful. bytes is
// the per-transfer payload size for accounting.
func Bcast[T any](c *Comm, root int, value T, bytes int64) T {
	size := c.w.size
	if size == 1 {
		return value
	}
	rel := relRank(c.rank, root, size)
	var have T
	if rel == 0 {
		have = value
		c.w.metrics.AddBroadcast(bytes)
	} else {
		// Receive from the parent: the rank that differs in the highest
		// set bit below rel's lowest set bit pattern.
		mask := 1
		for mask <= rel {
			mask <<= 1
		}
		mask >>= 1
		parent := absRank(rel-mask, root, size)
		have = c.recv(c.w.coll, parent).value.(T)
	}
	// Forward down the tree.
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; mask < size; mask <<= 1 {
		child := rel + mask
		if child < size {
			c.send(c.w.coll, absRank(child, root, size), message{have, bytes})
		}
	}
	return have
}

// Scatter sends parts[i] from root to rank i and returns this rank's
// part. Only root's parts argument is read; it must have length Size.
func Scatter[T any](c *Comm, root int, parts []T, bytesPer int64) T {
	if c.rank == root {
		if len(parts) != c.w.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", c.w.size, len(parts)))
		}
		for dst := 0; dst < c.w.size; dst++ {
			if dst == root {
				continue
			}
			c.send(c.w.coll, dst, message{parts[dst], bytesPer})
		}
		return parts[root]
	}
	return c.recv(c.w.coll, root).value.(T)
}

// Gather collects every rank's value at root, indexed by rank. Non-root
// ranks return nil.
func Gather[T any](c *Comm, root int, value T, bytes int64) []T {
	if c.rank != root {
		c.send(c.w.coll, root, message{value, bytes})
		return nil
	}
	out := make([]T, c.w.size)
	out[root] = value
	for src := 0; src < c.w.size; src++ {
		if src == root {
			continue
		}
		out[src] = c.recv(c.w.coll, src).value.(T)
	}
	return out
}

// Reduce combines every rank's value at root with the associative op;
// non-root ranks return the zero value and false.
func Reduce[T any](c *Comm, root int, value T, bytes int64, op func(T, T) T) (T, bool) {
	vals := Gather(c, root, value, bytes)
	if c.rank != root {
		var zero T
		return zero, false
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = op(acc, v)
	}
	return acc, true
}

// Allreduce combines every rank's value with op and returns the result
// on all ranks (reduce to 0, then broadcast).
func Allreduce[T any](c *Comm, value T, bytes int64, op func(T, T) T) T {
	acc, _ := Reduce(c, 0, value, bytes, op)
	return Bcast(c, 0, acc, bytes)
}

// Alltoall exchanges parts[i] from every rank to rank i and returns the
// received slice indexed by source rank. parts must have length Size.
func Alltoall[T any](c *Comm, parts []T, bytesPer int64) []T {
	if len(parts) != c.w.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d parts, got %d", c.w.size, len(parts)))
	}
	out := make([]T, c.w.size)
	out[c.rank] = parts[c.rank]
	// Send everything first (buffered fabric), then receive: with
	// bounded buffers this could deadlock for huge worlds, so interleave
	// by round-robin offset instead.
	for off := 1; off < c.w.size; off++ {
		dst := (c.rank + off) % c.w.size
		src := (c.rank - off + c.w.size) % c.w.size
		// Alternate send/recv order by parity to avoid cycles.
		if c.rank < dst {
			c.send(c.w.coll, dst, message{parts[dst], bytesPer})
			out[src] = c.recv(c.w.coll, src).value.(T)
		} else {
			out[src] = c.recv(c.w.coll, src).value.(T)
			c.send(c.w.coll, dst, message{parts[dst], bytesPer})
		}
	}
	return out
}

// BlockRange returns the [lo, hi) slice of n items owned by rank r of
// size ranks under contiguous block partitioning, the decomposition the
// MPI drivers use.
func BlockRange(n, r, size int) (lo, hi int) {
	lo = r * n / size
	hi = (r + 1) * n / size
	return lo, hi
}
