package mpi

import "fmt"

// Additional collectives and communicator operations beyond the core
// set, matching the MPI-1 surface the paper's MPI4py implementations
// draw on.

// Allgather collects every rank's value on every rank, indexed by rank
// (gather to 0 + broadcast of the assembled slice).
func Allgather[T any](c *Comm, value T, bytes int64) []T {
	all := Gather(c, 0, value, bytes)
	return Bcast(c, 0, all, bytes*int64(c.Size()))
}

// Scan computes the inclusive prefix reduction: rank r returns
// op(v0, v1, ..., vr). Implemented as a linear pipeline, the classic
// MPI_Scan topology.
func Scan[T any](c *Comm, value T, bytes int64, op func(T, T) T) T {
	acc := value
	if c.rank > 0 {
		prev := c.recv(c.w.coll, c.rank-1).value.(T)
		acc = op(prev, value)
	}
	if c.rank < c.w.size-1 {
		c.send(c.w.coll, c.rank+1, message{acc, bytes})
	}
	return acc
}

// Exscan computes the exclusive prefix reduction: rank 0 returns the
// zero value and ok=false; rank r>0 returns op(v0, ..., v(r-1)).
func Exscan[T any](c *Comm, value T, bytes int64, op func(T, T) T) (T, bool) {
	var prev T
	have := false
	if c.rank > 0 {
		prev = c.recv(c.w.coll, c.rank-1).value.(T)
		have = true
	}
	if c.rank < c.w.size-1 {
		next := value
		if have {
			next = op(prev, value)
		}
		c.send(c.w.coll, c.rank+1, message{next, bytes})
	}
	return prev, have
}

// ReduceScatter reduces per-destination values with op and delivers to
// each rank its own slot: rank r receives op over all ranks' parts[r].
// parts must have length Size on every rank.
func ReduceScatter[T any](c *Comm, parts []T, bytesPer int64, op func(T, T) T) T {
	if len(parts) != c.w.size {
		panic(fmt.Sprintf("mpi: ReduceScatter needs %d parts, got %d", c.w.size, len(parts)))
	}
	received := Alltoall(c, parts, bytesPer)
	acc := received[0]
	for _, v := range received[1:] {
		acc = op(acc, v)
	}
	return acc
}

// Sendrecv performs a simultaneous send to dst and receive from src,
// deadlock-free regardless of pairing (buffered fabric plus ordered
// ranks).
func (c *Comm) Sendrecv(dst int, value interface{}, bytes int64, src int) interface{} {
	if c.rank%2 == 0 {
		c.Send(dst, value, bytes)
		return c.Recv(src)
	}
	got := c.Recv(src)
	c.Send(dst, value, bytes)
	return got
}

// Group is a subset of ranks created by Split, with its own collective
// context built from point-to-point primitives of the parent world.
type Group struct {
	parent  *Comm
	members []int // world ranks, sorted; members[groupRank] = worldRank
	rank    int   // this rank's index within members
}

// Split partitions the communicator by color (ranks passing the same
// color join the same group), like MPI_Comm_split with key = world
// rank. Every rank must call Split.
func (c *Comm) Split(color int) *Group {
	colors := Allgather(c, color, 8)
	var members []int
	rank := -1
	for worldRank, col := range colors {
		if col == color {
			if worldRank == c.rank {
				rank = len(members)
			}
			members = append(members, worldRank)
		}
	}
	return &Group{parent: c, members: members, rank: rank}
}

// Rank returns this rank's index within the group.
func (g *Group) Rank() int { return g.rank }

// Size returns the group's member count.
func (g *Group) Size() int { return len(g.members) }

// WorldRank maps a group rank to the world rank.
func (g *Group) WorldRank(groupRank int) int { return g.members[groupRank] }

// GroupGather collects every group member's value at group rank 0
// (returns nil elsewhere), using world point-to-point messages.
func GroupGather[T any](g *Group, value T, bytes int64) []T {
	root := g.members[0]
	if g.rank != 0 {
		g.parent.Send(root, value, bytes)
		return nil
	}
	out := make([]T, len(g.members))
	out[0] = value
	for i := 1; i < len(g.members); i++ {
		out[i] = g.parent.Recv(g.members[i]).(T)
	}
	return out
}

// GroupBcast distributes group rank 0's value to all group members.
func GroupBcast[T any](g *Group, value T, bytes int64) T {
	root := g.members[0]
	if g.rank == 0 {
		for _, m := range g.members[1:] {
			g.parent.Send(m, value, bytes)
		}
		return value
	}
	return g.parent.Recv(root).(T)
}
