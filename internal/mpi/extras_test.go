package mpi

import (
	"reflect"
	"testing"
)

func TestAllgather(t *testing.T) {
	const size = 5
	err := Run(size, nil, func(c *Comm) error {
		all := Allgather(c, c.Rank()*10, 8)
		want := []int{0, 10, 20, 30, 40}
		if !reflect.DeepEqual(all, want) {
			t.Errorf("rank %d: Allgather = %v", c.Rank(), all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	const size = 6
	err := Run(size, nil, func(c *Comm) error {
		got := Scan(c, c.Rank()+1, 8, func(a, b int) int { return a + b })
		want := (c.Rank() + 1) * (c.Rank() + 2) / 2
		if got != want {
			t.Errorf("rank %d: Scan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	const size = 5
	err := Run(size, nil, func(c *Comm) error {
		got, ok := Exscan(c, c.Rank()+1, 8, func(a, b int) int { return a + b })
		if c.Rank() == 0 {
			if ok {
				t.Error("rank 0 claims a prefix")
			}
			return nil
		}
		want := c.Rank() * (c.Rank() + 1) / 2
		if !ok || got != want {
			t.Errorf("rank %d: Exscan = %d (%v), want %d", c.Rank(), got, ok, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	const size = 4
	err := Run(size, nil, func(c *Comm) error {
		parts := make([]int, size)
		for i := range parts {
			parts[i] = c.Rank() + i // rank r contributes r+dst to slot dst
		}
		got := ReduceScatter(c, parts, 8, func(a, b int) int { return a + b })
		// Slot r sums (s + r) over all source ranks s: 0+1+2+3 + 4r.
		want := 6 + 4*c.Rank()
		if got != want {
			t.Errorf("rank %d: ReduceScatter = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const size = 5
	err := Run(size, nil, func(c *Comm) error {
		dst := (c.Rank() + 1) % size
		src := (c.Rank() - 1 + size) % size
		got := c.Sendrecv(dst, c.Rank(), 8, src).(int)
		if got != src {
			t.Errorf("rank %d received %d, want %d", c.Rank(), got, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitGroups(t *testing.T) {
	const size = 6
	err := Run(size, nil, func(c *Comm) error {
		g := c.Split(c.Rank() % 2) // evens and odds
		if g.Size() != 3 {
			t.Errorf("rank %d: group size %d", c.Rank(), g.Size())
		}
		if g.WorldRank(g.Rank()) != c.Rank() {
			t.Errorf("rank %d: WorldRank mapping broken", c.Rank())
		}
		// Group gather at each group's leader.
		vals := GroupGather(g, c.Rank(), 8)
		if g.Rank() == 0 {
			want := []int{0, 2, 4}
			if c.Rank()%2 == 1 {
				want = []int{1, 3, 5}
			}
			if !reflect.DeepEqual(vals, want) {
				t.Errorf("group leader %d gathered %v", c.Rank(), vals)
			}
		} else if vals != nil {
			t.Errorf("non-leader got %v", vals)
		}
		// Group broadcast from each leader.
		leaderVal := GroupBcast(g, c.Rank()*100, 8)
		wantLeader := g.WorldRank(0) * 100
		if leaderVal != wantLeader {
			t.Errorf("rank %d: GroupBcast = %d, want %d", c.Rank(), leaderVal, wantLeader)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterWrongLength(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		ReduceScatter(c, []int{1}, 8, func(a, b int) int { return a + b })
		return nil
	})
	if err == nil {
		t.Fatal("wrong-length parts accepted")
	}
}
