// Package mdtask_test holds the repository-level benchmark harness: one
// testing.B benchmark per table/figure of the paper (each regenerates
// the artifact through the experiment harness) plus ablation benchmarks
// for the design choices DESIGN.md calls out (early-break Hausdorff,
// union-find vs BFS components, tree vs brute edge discovery, 1-D vs
// 2-D partitioning, partial-component shuffle reduction, stage-barrier
// vs greedy DAG scheduling).
//
// Run with: go test -bench=. -benchmem
package mdtask_test

import (
	"sync"
	"testing"

	"mdtask/internal/balltree"
	"mdtask/internal/bench"
	"mdtask/internal/cluster"
	"mdtask/internal/dask"
	"mdtask/internal/graph"
	"mdtask/internal/hausdorff"
	"mdtask/internal/leaflet"
	"mdtask/internal/linalg"
	"mdtask/internal/psa"
	"mdtask/internal/rdd"
	"mdtask/internal/synth"
)

var (
	calOnce sync.Once
	cal     *bench.Calibration
)

func calibration() *bench.Calibration {
	calOnce.Do(func() { cal = bench.Calibrate() })
	return cal
}

// benchExperiment regenerates one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	c := calibration()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := exp.Run(c)
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per paper artifact (Figures 2-9, Tables 1-3).

func BenchmarkFig2Throughput(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3MultiNode(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4PSA(b *testing.B)           { benchExperiment(b, "fig4") }
func BenchmarkFig5PSAMachines(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6CPPTraj(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7Leaflet(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8Broadcast(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9PilotLeaflet(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkTab1Comparison(b *testing.B)    { benchExperiment(b, "tab1") }
func BenchmarkTab2MapReduceOps(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkTab3DecisionFrame(b *testing.B) { benchExperiment(b, "tab3") }

// --- Kernel benchmarks backing the calibration ---

func benchTrajPair() (fa, fb [][]linalg.Vec3) {
	a := synth.Walk("a", 334, 40, 7, 0) // 1/10th-scale "small" preset
	bb := synth.Walk("b", 334, 40, 7, 1)
	return hausdorff.Frames(a), hausdorff.Frames(bb)
}

// Ablation: the early-break Hausdorff optimization (§2.1.1, [34]).
func BenchmarkHausdorffNaive(b *testing.B) {
	fa, fb := benchTrajPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hausdorff.DistanceFrames(fa, fb, hausdorff.Naive)
	}
}

func BenchmarkHausdorffEarlyBreak(b *testing.B) {
	fa, fb := benchTrajPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hausdorff.DistanceFrames(fa, fb, hausdorff.EarlyBreak)
	}
}

// Ablation: union-find vs BFS connected components.
func benchGraph() (int, []graph.Edge) {
	sys := synth.Bilayer(16384, 3)
	tree := balltree.New(sys.Coords)
	var edges []graph.Edge
	var buf []int32
	for i, p := range sys.Coords {
		buf = tree.QueryRadiusAppend(buf[:0], p, synth.BilayerCutoff)
		for _, j := range buf {
			if j > int32(i) {
				edges = append(edges, graph.Edge{U: int32(i), V: j})
			}
		}
	}
	return len(sys.Coords), edges
}

func BenchmarkConnectedComponentsUnionFind(b *testing.B) {
	n, edges := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.ComponentsUnionFind(n, edges)
	}
}

func BenchmarkConnectedComponentsBFS(b *testing.B) {
	n, edges := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.ComponentsBFS(n, edges)
	}
}

// Ablation: brute-force vs tree-based edge discovery (the Approach 3 vs
// 4 crossover of §4.3.4).
func BenchmarkEdgeDiscoveryBrute(b *testing.B) {
	sys := synth.Bilayer(4096, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.PairsWithinSelf(sys.Coords, synth.BilayerCutoff)
	}
}

func BenchmarkEdgeDiscoveryTree(b *testing.B) {
	sys := synth.Bilayer(4096, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := balltree.New(sys.Coords)
		var buf []int32
		for _, p := range sys.Coords {
			buf = tree.QueryRadiusAppend(buf[:0], p, synth.BilayerCutoff)
		}
	}
}

func BenchmarkBallTreeConstruction(b *testing.B) {
	sys := synth.Bilayer(16384, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balltree.New(sys.Coords)
	}
}

// Ablation: 1-D vs 2-D partitioning load balance (§4.3.2). The metric is
// the modeled makespan on 64 cores: 1-D row chunks are imbalanced
// (earlier chunks scan more pairs), 2-D tiles are uniform.
func BenchmarkPartitioning1D(b *testing.B) {
	benchPartitioning(b, true)
}

func BenchmarkPartitioning2D(b *testing.B) {
	benchPartitioning(b, false)
}

func benchPartitioning(b *testing.B, oneD bool) {
	c := calibration()
	const atoms = 131072
	var makespan float64
	for i := 0; i < b.N; i++ {
		var tasks []float64
		if oneD {
			_, pairs := leaflet.Plan1D(atoms, 1024)
			for _, p := range pairs {
				tasks = append(tasks, float64(p)*c.CdistPerPair)
			}
		} else {
			for _, blk := range leaflet.Plan2D(atoms, 1024) {
				tasks = append(tasks, float64(blk.Rows)*float64(blk.Cols)*c.CdistPerPair)
			}
		}
		res := cluster.Estimate(cluster.DefaultProfile(cluster.MPI),
			cluster.Alloc{Machine: cluster.Wrangler(), Nodes: 2, CoresPerNode: 32},
			cluster.Workload{Phases: []cluster.Phase{{Name: "p", Tasks: tasks}}})
		makespan = res.Makespan
	}
	b.ReportMetric(makespan, "model-makespan-s")
}

// Ablation: shuffle volume of edge lists vs partial components (Table 2)
// measured on real runs.
func BenchmarkShuffleVolumeEdges(b *testing.B) {
	benchShuffle(b, leaflet.TaskAPI2D)
}

func BenchmarkShuffleVolumeComponents(b *testing.B) {
	benchShuffle(b, leaflet.ParallelCC)
}

func benchShuffle(b *testing.B, approach leaflet.Approach) {
	sys := synth.Bilayer(8192, 9)
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := leaflet.RunRDD(rdd.NewContext(0), approach, sys.Coords, synth.BilayerCutoff, 64)
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Stats.ShuffleBytes
	}
	b.ReportMetric(float64(bytes), "shuffle-bytes")
}

// Ablation: stage-barrier (Spark-like) vs greedy DAG (Dask-like)
// dispatch on many null tasks.
func BenchmarkSchedulerModelStageBarrier(b *testing.B) {
	benchScheduler(b, cluster.Spark)
}

func BenchmarkSchedulerModelGreedyDAG(b *testing.B) {
	benchScheduler(b, cluster.Dask)
}

func benchScheduler(b *testing.B, fw cluster.Framework) {
	prof := cluster.DefaultProfile(fw)
	prof.Startup = 0
	w := cluster.Workload{Phases: []cluster.Phase{{
		Name:  "null",
		Tasks: cluster.UniformTasks(16384, 0),
	}}}
	var makespan float64
	for i := 0; i < b.N; i++ {
		res := cluster.Estimate(prof, cluster.Alloc{
			Machine: cluster.Wrangler(), Nodes: 1, CoresPerNode: 24,
		}, w)
		makespan = res.Makespan
	}
	b.ReportMetric(makespan, "model-makespan-s")
}

// Real-engine PSA micro-benchmarks (one block task per core).
func BenchmarkPSASerial(b *testing.B) {
	ens := synth.Ensemble(synth.EnsemblePreset{Name: "b", NAtoms: 128, NFrames: 20}, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psa.Serial(ens, psa.Opts{Method: hausdorff.Naive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPSARDDEngine(b *testing.B) {
	ens := synth.Ensemble(synth.EnsemblePreset{Name: "b", NAtoms: 128, NFrames: 20}, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psa.RunRDD(rdd.NewContext(0), ens, 2, psa.Opts{Method: hausdorff.Naive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPSADaskEngine(b *testing.B) {
	ens := synth.Ensemble(synth.EnsemblePreset{Name: "b", NAtoms: 128, NFrames: 20}, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psa.RunDask(dask.NewClient(0), ens, 2, psa.Opts{Method: hausdorff.Naive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafletSerial64k(b *testing.B) {
	sys := synth.Bilayer(65536, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := leaflet.Serial(sys.Coords, synth.BilayerCutoff)
		if len(res.Components) != 2 {
			b.Fatal("wrong component count")
		}
	}
}
