#!/bin/sh
# loadgate.sh — CI gate for the production load harness (cmd/mdload).
#
# Boots mdserver with a deliberately small queue (-queue 4, below the
# harness concurrency of 8, so the overload scenario MUST provoke
# 429s) plus two healthy external mdworkers, then runs the full
# non-chaos scenario suite with every deterministic invariant gating:
#
#   - zero lost jobs (every accepted submission reaches a terminal
#     state the scenario allows);
#   - counter deltas match harness counts exactly (submitted,
#     rejected); every 429 carries Retry-After; every oversized body
#     answers 413;
#   - wal_records_skipped == 0 on the journal-backed server;
#   - go_goroutines returns to baseline after each scenario.
#
# A third mdworker is then started with MDTASK_FAULTS arming the
# fleet.unit.execute point — a slowdown, an injected unit failure
# (exercising the failure-nack requeue), and a process crash
# (exercising the lease-expiry failure detector) — and the chaos
# scenario runs with -chaos, which additionally REQUIRES scraped
# evidence that the faults fired. Latency percentiles are recorded to
# BENCH_load.json / load_latency.csv but never gate.
#
# Every spawned process is reaped from a single trap, so an assertion
# failure can never leak an mdserver/mdworker onto a CI runner's port.
set -eu

PORT="${LOADGATE_PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
OUT="$(mktemp -d)"
DATA="$OUT/data"
REPORT_DIR="${LOADGATE_REPORT_DIR:-.}"
SERVER_PID=""
W1_PID=""
W2_PID=""
W3_PID=""

cleanup() {
    status=$?
    for pid in "$W1_PID" "$W2_PID" "$W3_PID" "$SERVER_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$OUT"
    if [ "$status" -ne 0 ]; then
        echo "loadgate: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "loadgate: building mdserver + mdworker + mdload"
go build -o "$BIN/mdserver" ./cmd/mdserver
go build -o "$BIN/mdworker" ./cmd/mdworker
go build -o "$BIN/mdload" ./cmd/mdload

# Queue depth 4 < harness concurrency 8: the overload scenario must
# provoke real 429s (-expect-shed makes their absence a failure).
# Short fleet TTLs so the chaos worker's crash is detected quickly.
"$BIN/mdserver" -addr "127.0.0.1:$PORT" -workers 2 -queue 4 -data-dir "$DATA" \
    -fleet-lease-ttl 3s -fleet-heartbeat-ttl 1500ms -fleet-sweep 100ms \
    >"$OUT/mdserver.log" 2>&1 &
SERVER_PID=$!

wait_healthy() {
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "loadgate: mdserver never became healthy" >&2; exit 1; }
        sleep 0.1
    done
}

wait_workers() { # wait_workers <count>
    i=0
    until [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers)" = "$1" ]; do
        i=$((i + 1))
        [ "$i" -ge 200 ] && { echo "loadgate: $1 worker(s) never registered" >&2; exit 1; }
        sleep 0.1
    done
}

wait_healthy
"$BIN/mdworker" -coordinator "$BASE" -name loadgate-w1 >"$OUT/w1.log" 2>&1 &
W1_PID=$!
"$BIN/mdworker" -coordinator "$BASE" -name loadgate-w2 >"$OUT/w2.log" 2>&1 &
W2_PID=$!
wait_workers 2
echo "loadgate: mdserver up (queue=4, journal in \$OUT/data) with 2 healthy workers"

echo "loadgate: running the non-chaos suite"
"$BIN/mdload" -server "$BASE" \
    -scenario resubmit-storm,delta-append,fleet-fanout,cancel-storm,stream-mix,overload \
    -jobs 24 -concurrency 8 -seed 1 \
    -expect-shed -require-workers -gate \
    -json "$REPORT_DIR/BENCH_load.json" -csv "$REPORT_DIR/load_latency.csv"

# Chaos leg: a third worker armed at the fleet.unit.execute point —
# its 1st unit is slowed, its 2nd fails (failure nack -> immediate
# requeue), its 4th crashes the process (exit 137 -> heartbeat expiry
# -> leases requeued by the failure detector). Armed only now, so the
# before/after fleet-stat deltas the chaos gate checks are all its own.
echo "loadgate: running the chaos scenario against a fault-armed worker"
MDTASK_FAULTS='fleet.unit.execute=sleep:50ms@1,fleet.unit.execute=error@2,fleet.unit.execute=crash@4' \
    "$BIN/mdworker" -coordinator "$BASE" -name loadgate-chaos >"$OUT/w3.log" 2>&1 &
W3_PID=$!
wait_workers 3
"$BIN/mdload" -server "$BASE" -scenario chaos \
    -jobs 12 -concurrency 4 -seed 1 \
    -chaos -require-workers -gate \
    -json "$REPORT_DIR/BENCH_load_chaos.json"
W3_PID="" # crashed by design; already reaped

# The armed worker must actually have died (crash@4), proving the
# killed-worker path ran, not just the nack path.
if [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers_lost)" -lt 1 ]; then
    echo "loadgate: chaos worker never crashed (workers_lost == 0)" >&2
    exit 1
fi

echo "loadgate: reports in $REPORT_DIR/BENCH_load.json, $REPORT_DIR/BENCH_load_chaos.json, $REPORT_DIR/load_latency.csv"
echo "loadgate: OK"
