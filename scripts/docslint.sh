#!/bin/sh
# docslint: every internal/* and cmd/* package must open with a
# substantive package doc comment — "// Package <name> ..." (or
# "// Command <name> ..." for main packages) spanning at least two
# comment lines, so the comment has room to state the package's role
# AND its place in the pipeline, not just restate its name. The
# kernel-method and engine contracts (docs/kernels.md, README package
# map) lean on these comments being trustworthy.
#
# Run via `make docslint`; CI gates on it.
set -eu
cd "$(dirname "$0")/.."

status=0
for dir in internal/*/ internal/*/*/ cmd/*/; do
  [ -d "$dir" ] || continue
  # Only directories that actually hold a Go package.
  set -- "$dir"*.go
  [ -e "$1" ] || continue
  name=$(basename "$dir")

  # The file carrying the package doc comment.
  doc_file=$(grep -l "^// Package $name\|^// Command $name" "$dir"*.go 2>/dev/null | head -1 || true)
  if [ -z "$doc_file" ]; then
    echo "docslint: $dir: no package doc comment (want \"// Package $name ...\" or \"// Command $name ...\")" >&2
    status=1
    continue
  fi

  # Substance: the comment block opening with the doc sentence must be
  # at least two lines long (one-line restatements of the name do not
  # document a role or a pipeline place).
  lines=$(awk -v name="$name" '
    $0 ~ "^// (Package|Command) "name { in_doc = 1 }
    in_doc && /^\/\// { n++; next }
    in_doc { exit }
    END { print n + 0 }
  ' "$doc_file")
  if [ "$lines" -lt 2 ]; then
    echo "docslint: $dir: package doc comment is a single line — state the package's role and pipeline place" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "docslint: OK — every internal/cmd package carries a substantive doc comment"
fi
exit $status
