#!/bin/sh
# smoke_obs.sh — CI smoke for the observability layer (internal/obs).
#
# Boots mdserver (embedded coordinator, tracing on) and two external
# mdworker processes with their own /metrics listeners, runs a serial
# and a fleet job, and asserts:
#
#   1. GET /metrics on mdserver and on a worker parse as Prometheus
#      text exposition (every sample line is NAME{LABELS} VALUE),
#   2. the key series exist and are consistent — in particular the
#      POST /v1/jobs request count equals the number of submissions,
#      and the worker observed block kernels and lease round-trips,
#   3. GET /v1/jobs/{id}/trace of the fleet job is Chrome trace_event
#      JSON in which every span shares one trace id, both processes
#      appear, the whole submit→queue→run→lease→kernel→record chain is
#      present, and each worker-side kernel span is parented under a
#      coordinator-side lease span — i.e. the trace survived two HTTP
#      hops between processes intact.
#
# Every spawned process is reaped from a single trap, so an assertion
# failure can never leak an mdserver/mdworker onto a CI runner's port.
set -eu

PORT="${SMOKE_OBS_PORT:-18082}"
W1_METRICS_PORT=$((PORT + 1))
W2_METRICS_PORT=$((PORT + 2))
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
OUT="$(mktemp -d)"
SERVER_PID=""
W1_PID=""
W2_PID=""

cleanup() {
    status=$?
    for pid in "$W1_PID" "$W2_PID" "$SERVER_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$OUT"
    if [ "$status" -ne 0 ]; then
        echo "smoke-obs: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "smoke-obs: building mdserver + mdworker"
go build -o "$BIN/mdserver" ./cmd/mdserver
go build -o "$BIN/mdworker" ./cmd/mdworker

"$BIN/mdserver" -addr "127.0.0.1:$PORT" -workers 2 -log-format json \
    -fleet-lease-ttl 5s -fleet-heartbeat-ttl 2s -fleet-sweep 100ms \
    >"$OUT/mdserver.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-obs: mdserver never became healthy" >&2; exit 1; }
    sleep 0.1
done

"$BIN/mdworker" -coordinator "$BASE" -name smoke-obs-w1 \
    -metrics-addr "127.0.0.1:$W1_METRICS_PORT" >"$OUT/w1.log" 2>&1 &
W1_PID=$!
"$BIN/mdworker" -coordinator "$BASE" -name smoke-obs-w2 \
    -metrics-addr "127.0.0.1:$W2_METRICS_PORT" >"$OUT/w2.log" 2>&1 &
W2_PID=$!

i=0
until [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers)" = "2" ]; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-obs: workers never registered" >&2; exit 1; }
    sleep 0.1
done
echo "smoke-obs: mdserver up with 2 registered workers"

# The two jobs use different synth seeds on purpose: blocks are
# content-addressed across engines, so a same-seed fleet job after the
# serial one could be served from the block cache without ever leasing
# a unit — and the trace would have no worker-side spans to assert on.
submit() { # submit <engine> <seed> -> job id
    curl -fsS -X POST "$BASE/v1/jobs" \
        -d "{\"analysis\":\"psa\",\"engine\":\"$1\",\"parallelism\":2,\"tasks\":8,\"synth\":{\"count\":6,\"atoms\":32,\"frames\":24,\"seed\":$2}}" |
        jq -r .id
}

wait_done() { # wait_done <id>
    _i=0
    while :; do
        _state="$(curl -fsS "$BASE/v1/jobs/$1" | jq -r .state)"
        case "$_state" in
        done) return 0 ;;
        failed | cancelled)
            echo "smoke-obs: job $1 ended $_state" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            return 1
            ;;
        esac
        _i=$((_i + 1))
        [ "$_i" -ge 600 ] && { echo "smoke-obs: job $1 stuck in $_state" >&2; return 1; }
        sleep 0.1
    done
}

echo "smoke-obs: running one serial and one fleet job"
SERIAL_ID="$(submit serial 1)"
wait_done "$SERIAL_ID"
FLEET_ID="$(submit fleet 42)"
wait_done "$FLEET_ID"
SUBMISSIONS=2

# --- 1. Exposition format -------------------------------------------------

# Every non-comment, non-blank line must be a valid sample:
# name, optional {labels}, and a float value (incl. +Inf/NaN/exponent).
validate_exposition() { # validate_exposition <file> <what>
    if bad=$(grep -vE '^(#|$)' "$1" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9.]+([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$'); then
        if [ -n "$bad" ]; then
            echo "smoke-obs: $2 has malformed exposition lines:" >&2
            echo "$bad" | head >&2
            exit 1
        fi
    fi
}

curl -fsS "$BASE/metrics" >"$OUT/server_metrics.txt"
curl -fsS "http://127.0.0.1:$W1_METRICS_PORT/metrics" >"$OUT/worker_metrics.txt"
validate_exposition "$OUT/server_metrics.txt" "mdserver /metrics"
validate_exposition "$OUT/worker_metrics.txt" "mdworker /metrics"

CT="$(curl -fsSI "$BASE/metrics" | tr -d '\r' | grep -i '^content-type:' | cut -d' ' -f2-)"
case "$CT" in
"text/plain; version=0.0.4"*) ;;
*)
    echo "smoke-obs: /metrics Content-Type is '$CT', want text/plain; version=0.0.4" >&2
    exit 1
    ;;
esac
echo "smoke-obs: both expositions parse"

# --- 2. Key series --------------------------------------------------------

need_series() { # need_series <file> <grep-pattern> <what>
    grep -qE "$2" "$1" || {
        echo "smoke-obs: $3 missing from $(basename "$1") (pattern: $2)" >&2
        exit 1
    }
}

need_series "$OUT/server_metrics.txt" '^mdtask_build_info\{[^}]*service="mdserver"' "build info gauge"
need_series "$OUT/server_metrics.txt" '^mdtask_jobs_submitted_total 2$' "submitted-jobs counter"
need_series "$OUT/server_metrics.txt" '^mdtask_jobs_completed_total\{state="done"\} 2$' "completed-jobs counter"
need_series "$OUT/server_metrics.txt" '^mdtask_job_queue_wait_seconds_count 2$' "queue-wait histogram"
need_series "$OUT/server_metrics.txt" '^mdtask_job_run_seconds_bucket\{[^}]*engine="fleet"' "run-time histogram"
need_series "$OUT/server_metrics.txt" '^go_goroutines ' "runtime gauge"

# The HTTP middleware's POST /v1/jobs accounting must equal the number
# of submissions this script made — both the counter and the histogram.
POSTS="$(grep -E '^mdtask_http_requests_total\{[^}]*method="POST",path="/v1/jobs",code="202"\}' "$OUT/server_metrics.txt" | awk '{print $2}')"
if [ "$POSTS" != "$SUBMISSIONS" ]; then
    echo "smoke-obs: POST /v1/jobs request counter is '$POSTS', want $SUBMISSIONS" >&2
    exit 1
fi
HIST_COUNT="$(grep -E '^mdtask_http_request_duration_seconds_count\{[^}]*method="POST",path="/v1/jobs"\}' "$OUT/server_metrics.txt" | awk '{print $2}')"
if [ "$HIST_COUNT" != "$SUBMISSIONS" ]; then
    echo "smoke-obs: POST /v1/jobs duration histogram count is '$HIST_COUNT', want $SUBMISSIONS" >&2
    exit 1
fi

need_series "$OUT/worker_metrics.txt" '^mdtask_build_info\{[^}]*service="mdworker"' "worker build info gauge"
need_series "$OUT/worker_metrics.txt" '^mdtask_fleet_lease_roundtrip_seconds_count [1-9]' "lease round-trip histogram"
KERNELS="$(grep -E '^mdtask_block_kernel_seconds_count ' "$OUT/worker_metrics.txt" | awk '{print $2}')"
if [ -z "$KERNELS" ] || [ "$KERNELS" -lt 1 ]; then
    echo "smoke-obs: worker observed no block kernels (count: '$KERNELS')" >&2
    exit 1
fi
echo "smoke-obs: key series present (POST /v1/jobs count=$POSTS, worker kernels=$KERNELS)"

# --- 3. Cross-process trace -----------------------------------------------

curl -fsS "$BASE/v1/jobs/$FLEET_ID/trace" >"$OUT/trace.json"

jq -e '
  [.traceEvents[] | select(.ph=="X")] as $x
  | [$x[] | select(.name=="fleet.lease") | .args.span_id] as $leases
  | [$x[] | select(.name=="worker.kernel")] as $kernels
  | ([$x[] | .args.trace_id] | unique | length) == 1
    and ([.traceEvents[] | select(.ph=="M") | .args.name] | (index("mdserver") != null) and (index("mdworker") != null))
    and ([$x[] | .name] | (index("job") != null) and (index("queue.wait") != null)
         and (index("run") != null) and (index("engine.fleet") != null)
         and (index("fleet.job") != null) and (index("fleet.record") != null))
    and ($kernels | length) > 0
    and ($kernels | all(.args.parent_id as $p | $leases | index($p) != null))
' "$OUT/trace.json" >/dev/null || {
    echo "smoke-obs: fleet job trace failed the cross-process assertions" >&2
    jq '[.traceEvents[] | select(.ph=="X") | {name, proc: .pid, parent: .args.parent_id}]' "$OUT/trace.json" >&2 || cat "$OUT/trace.json" >&2
    exit 1
}
N_SPANS="$(jq '[.traceEvents[] | select(.ph=="X")] | length' "$OUT/trace.json")"
N_KERNELS="$(jq '[.traceEvents[] | select(.ph=="X" and .name=="worker.kernel")] | length' "$OUT/trace.json")"
echo "smoke-obs: fleet trace OK ($N_SPANS spans, $N_KERNELS worker kernels, one trace id, kernels nest under leases)"

# The status payload advertises the same trace id the export carries.
STATUS_TRACE="$(curl -fsS "$BASE/v1/jobs/$FLEET_ID" | jq -r .trace_id)"
EXPORT_TRACE="$(jq -r '[.traceEvents[] | select(.ph=="X") | .args.trace_id] | unique | .[0]' "$OUT/trace.json")"
if [ "$STATUS_TRACE" != "$EXPORT_TRACE" ]; then
    echo "smoke-obs: status trace_id $STATUS_TRACE != exported trace id $EXPORT_TRACE" >&2
    exit 1
fi

echo "smoke-obs: OK"
