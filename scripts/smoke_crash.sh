#!/bin/sh
# smoke_crash.sh — CI gate for the durable job store and crash recovery.
#
# Boots mdserver with a -data-dir journal and two external mdworkers,
# then SIGKILLs mdserver while a fleet job is demonstrably mid-run. A
# second mdserver is started against the SAME data directory and the
# gate asserts:
#
#   1. zero lost jobs — the job submitted before the kill is listed
#      after the restart, under its original id;
#   2. the mid-run fleet job is re-run from its journaled spec and
#      completes with a matrix byte-identical to a serial reference
#      computed afterwards;
#   3. /metrics exposes the recovery evidence: jobs_recovered > 0,
#      wal_records_replayed > 0, and wal_records_skipped == 0.
#
# The fleet job runs FIRST, against a cold block store: the store is
# shared across engines, so a prior serial job with the same spec
# would make the fleet job an instant cache hit and the SIGKILL could
# never land mid-run.
#
# Every spawned process is reaped from a single trap, so an assertion
# failure can never leak an mdserver/mdworker onto a CI runner's port.
set -eu

PORT="${SMOKE_CRASH_PORT:-18079}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
OUT="$(mktemp -d)"
DATA="$OUT/data"
SERVER_PID=""
W1_PID=""
W2_PID=""

cleanup() {
    status=$?
    for pid in "$W1_PID" "$W2_PID" "$SERVER_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$BIN" "$OUT"
    if [ "$status" -ne 0 ]; then
        echo "smoke-crash: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "smoke-crash: building mdserver + mdworker"
go build -o "$BIN/mdserver" ./cmd/mdserver
go build -o "$BIN/mdworker" ./cmd/mdworker

start_server() {
    "$BIN/mdserver" -addr "127.0.0.1:$PORT" -workers 2 -data-dir "$DATA" \
        -fleet-lease-ttl 3s -fleet-heartbeat-ttl 1500ms -fleet-sweep 100ms \
        >>"$OUT/mdserver.log" 2>&1 &
    SERVER_PID=$!
}

wait_healthy() {
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "smoke-crash: mdserver never became healthy" >&2; exit 1; }
        sleep 0.1
    done
}

wait_workers() { # wait_workers <count>
    i=0
    until [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers)" = "$1" ]; do
        i=$((i + 1))
        [ "$i" -ge 200 ] && { echo "smoke-crash: $1 worker(s) never registered" >&2; exit 1; }
        sleep 0.1
    done
}

start_server
wait_healthy

"$BIN/mdworker" -coordinator "$BASE" -name smoke-crash-w1 >"$OUT/w1.log" 2>&1 &
W1_PID=$!
"$BIN/mdworker" -coordinator "$BASE" -name smoke-crash-w2 >"$OUT/w2.log" 2>&1 &
W2_PID=$!
wait_workers 2
echo "smoke-crash: mdserver up with journal in $DATA and 2 registered workers"

# Same job sizing as smoke_fleet: big enough that the SIGKILL lands
# mid-run, deterministic via a fixed seed.
SPEC_TAIL='"parallelism":2,"tasks":16,"synth":{"count":8,"atoms":128,"frames":640,"seed":42}'

submit() { # submit <engine> -> job id
    curl -fsS -X POST "$BASE/v1/jobs" \
        -d "{\"analysis\":\"psa\",\"engine\":\"$1\",$SPEC_TAIL}" | jq -r .id
}

poll_state() { # poll_state <id>
    curl -fsS "$BASE/v1/jobs/$1" | jq -r .state
}

wait_done() { # wait_done <id> <max-deciseconds>
    _i=0
    while :; do
        _state="$(poll_state "$1")"
        case "$_state" in
        done) return 0 ;;
        failed | cancelled)
            echo "smoke-crash: job $1 ended $_state" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            return 1
            ;;
        esac
        _i=$((_i + 1))
        [ "$_i" -ge "$2" ] && { echo "smoke-crash: job $1 stuck in $_state" >&2; return 1; }
        sleep 0.1
    done
}

echo "smoke-crash: running the fleet job and SIGKILLing mdserver mid-run"
FLEET_ID="$(submit fleet)"

# Wait until the fleet job is demonstrably mid-run, then SIGKILL the
# SERVER — no drain, no shutdown marker, the journal simply stops. A
# job that finishes before the kill lands means the job is sized wrong
# for this runner, and the gate fails rather than skipping the
# recovery-path coverage.
i=0
while :; do
    TASKS_DONE="$(curl -fsS "$BASE/v1/jobs/$FLEET_ID" | jq -r .tasks_done)"
    STATE="$(poll_state "$FLEET_ID")"
    if [ "$STATE" = "running" ] && [ "$TASKS_DONE" -ge 1 ] 2>/dev/null; then
        kill -9 "$SERVER_PID"
        wait "$SERVER_PID" 2>/dev/null || true
        SERVER_PID=""
        echo "smoke-crash: SIGKILLed mdserver after $TASKS_DONE blocks"
        break
    fi
    if [ "$STATE" = "done" ] || [ "$STATE" = "failed" ] || [ "$STATE" = "cancelled" ]; then
        echo "smoke-crash: fleet job reached $STATE before mdserver could be killed mid-run;" >&2
        echo "smoke-crash: enlarge the synth job so the recovery path is actually exercised" >&2
        exit 1
    fi
    i=$((i + 1))
    [ "$i" -ge 600 ] && { echo "smoke-crash: fleet job never reached mid-run" >&2; exit 1; }
    sleep 0.05
done

echo "smoke-crash: restarting mdserver against the same -data-dir"
start_server
wait_healthy

# Zero lost jobs: the pre-crash fleet job must be listed under its
# original id, re-enqueued from its journaled spec.
JOB_COUNT="$(curl -fsS "$BASE/v1/jobs" | jq length)"
if [ "$JOB_COUNT" -ne 1 ]; then
    echo "smoke-crash: $JOB_COUNT job(s) after restart, want 1" >&2
    curl -fsS "$BASE/v1/jobs" >&2 || true
    exit 1
fi
if ! curl -fsS "$BASE/v1/jobs/$FLEET_ID" >/dev/null; then
    echo "smoke-crash: job $FLEET_ID lost across the restart" >&2
    exit 1
fi

# The orphaned workers re-register on their next heartbeat (404 from
# the restarted coordinator), then pick the recovered job back up.
wait_workers 2
echo "smoke-crash: workers re-registered; waiting for the recovered job"
wait_done "$FLEET_ID" 1800
curl -fsS "$BASE/v1/jobs/$FLEET_ID/result" | jq -S .matrix >"$OUT/fleet.json"

echo "smoke-crash: computing the serial reference"
SERIAL_ID="$(submit serial)"
wait_done "$SERIAL_ID" 1200
curl -fsS "$BASE/v1/jobs/$SERIAL_ID/result" | jq -S .matrix >"$OUT/serial.json"

if ! cmp -s "$OUT/serial.json" "$OUT/fleet.json"; then
    echo "smoke-crash: recovered fleet matrix differs from serial reference" >&2
    diff "$OUT/serial.json" "$OUT/fleet.json" | head >&2 || true
    exit 1
fi
echo "smoke-crash: recovered matrix byte-identical to the serial reference"

# Recovery evidence on /metrics: jobs recovered, journal replayed,
# nothing skipped (a skip would mean the log saw corruption).
METRICS="$(curl -fsS "$BASE/metrics")"
RECOVERED="$(printf '%s\n' "$METRICS" | awk '/^mdtask_jobs_recovered_total/ {s += $NF} END {print s+0}')"
REPLAYED="$(printf '%s\n' "$METRICS" | awk '/^mdtask_wal_records_replayed_total/ {s += $NF} END {print s+0}')"
SKIPPED="$(printf '%s\n' "$METRICS" | awk '/^mdtask_wal_records_skipped_total/ {s += $NF} END {print s+0}')"
if [ "$RECOVERED" -lt 1 ]; then
    echo "smoke-crash: mdtask_jobs_recovered_total = $RECOVERED, want >= 1" >&2
    exit 1
fi
if [ "$REPLAYED" -lt 1 ]; then
    echo "smoke-crash: mdtask_wal_records_replayed_total = $REPLAYED, want >= 1" >&2
    exit 1
fi
if [ "$SKIPPED" -ne 0 ]; then
    echo "smoke-crash: mdtask_wal_records_skipped_total = $SKIPPED, want 0" >&2
    exit 1
fi
echo "smoke-crash: jobs_recovered=$RECOVERED wal_records_replayed=$REPLAYED wal_records_skipped=$SKIPPED"
echo "smoke-crash: OK"
