#!/bin/sh
# smoke_fleet.sh — CI smoke for the multi-process fleet engine.
#
# Boots mdserver (embedded fleet coordinator, short failure-detector
# timings) and two external mdworker processes, runs the same synth PSA
# job on the serial engine and on the fleet, kills one worker with
# SIGKILL mid-run, and asserts:
#
#   1. the fleet job still completes (the dead worker's leased blocks
#      are requeued onto the survivor), and
#   2. its matrix is byte-identical to the serial engine's.
#
# Every spawned process is reaped from a single trap, so an assertion
# failure can never leak an mdserver/mdworker onto a CI runner's port.
set -eu

PORT="${SMOKE_FLEET_PORT:-18078}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
OUT="$(mktemp -d)"
SERVER_PID=""
W1_PID=""
W2_PID=""

cleanup() {
    status=$?
    for pid in "$W1_PID" "$W2_PID" "$SERVER_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    # Reap so no zombie outlives the recipe, then drop the scratch dirs.
    wait 2>/dev/null || true
    rm -rf "$BIN" "$OUT"
    if [ "$status" -ne 0 ]; then
        echo "smoke-fleet: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "smoke-fleet: building mdserver + mdworker"
go build -o "$BIN/mdserver" ./cmd/mdserver
go build -o "$BIN/mdworker" ./cmd/mdworker

"$BIN/mdserver" -addr "127.0.0.1:$PORT" -workers 2 \
    -fleet-lease-ttl 3s -fleet-heartbeat-ttl 1500ms -fleet-sweep 100ms \
    >"$OUT/mdserver.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-fleet: mdserver never became healthy" >&2; exit 1; }
    sleep 0.1
done

"$BIN/mdworker" -coordinator "$BASE" -name smoke-w1 >"$OUT/w1.log" 2>&1 &
W1_PID=$!
"$BIN/mdworker" -coordinator "$BASE" -name smoke-w2 >"$OUT/w2.log" 2>&1 &
W2_PID=$!

i=0
until [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers)" = "2" ]; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-fleet: workers never registered" >&2; exit 1; }
    sleep 0.1
done
echo "smoke-fleet: mdserver up with 2 registered workers"

# The job: big enough that killing a worker lands mid-run (10 blocks
# of several hundred ms each on 2 workers — the kernel is O(frames²)
# per trajectory pair, so frames dominate), deterministic via a fixed
# seed.
SPEC_TAIL='"parallelism":2,"tasks":16,"synth":{"count":8,"atoms":128,"frames":640,"seed":42}'

submit() { # submit <engine> -> job id
    curl -fsS -X POST "$BASE/v1/jobs" \
        -d "{\"analysis\":\"psa\",\"engine\":\"$1\",$SPEC_TAIL}" | jq -r .id
}

poll_state() { # poll_state <id>
    curl -fsS "$BASE/v1/jobs/$1" | jq -r .state
}

wait_done() { # wait_done <id> <max-deciseconds>
    _i=0
    while :; do
        _state="$(poll_state "$1")"
        case "$_state" in
        done) return 0 ;;
        failed | cancelled)
            echo "smoke-fleet: job $1 ended $_state" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            return 1
            ;;
        esac
        _i=$((_i + 1))
        [ "$_i" -ge "$2" ] && { echo "smoke-fleet: job $1 stuck in $_state" >&2; return 1; }
        sleep 0.1
    done
}

echo "smoke-fleet: running the serial reference job"
SERIAL_ID="$(submit serial)"
wait_done "$SERIAL_ID" 1200
curl -fsS "$BASE/v1/jobs/$SERIAL_ID/result" | jq -S .matrix >"$OUT/serial.json"

echo "smoke-fleet: running the fleet job and killing worker 1 mid-run"
FLEET_ID="$(submit fleet)"

# Wait until the fleet job is demonstrably mid-run (running, at least
# one block done), then SIGKILL a worker — no drain, no deregister,
# exactly the failure the requeue path exists for. The kill is the
# point of this gate: a job that finishes before we can land it means
# the job is sized wrong for this runner, and the gate fails rather
# than silently skipping the failure-path coverage.
KILLED=0
i=0
while :; do
    TASKS_DONE="$(curl -fsS "$BASE/v1/jobs/$FLEET_ID" | jq -r .tasks_done)"
    STATE="$(poll_state "$FLEET_ID")"
    if [ "$STATE" = "running" ] && [ "$TASKS_DONE" -ge 1 ] 2>/dev/null; then
        kill -9 "$W1_PID"
        W1_PID=""
        KILLED=1
        echo "smoke-fleet: SIGKILLed worker 1 after $TASKS_DONE blocks"
        break
    fi
    if [ "$STATE" = "done" ] || [ "$STATE" = "failed" ] || [ "$STATE" = "cancelled" ]; then
        echo "smoke-fleet: fleet job reached $STATE before a worker could be killed mid-run;" >&2
        echo "smoke-fleet: enlarge the synth job so the kill path is actually exercised" >&2
        exit 1
    fi
    i=$((i + 1))
    [ "$i" -ge 600 ] && { echo "smoke-fleet: fleet job never reached mid-run" >&2; exit 1; }
    sleep 0.05
done

wait_done "$FLEET_ID" 1200

# The coordinator must observe the death: the SIGKILLed worker stops
# heartbeating, so the failure detector has to count it lost (and
# requeue whatever it held) regardless of how the job finished.
[ "$KILLED" -eq 1 ] || { echo "smoke-fleet: internal error: kill not performed" >&2; exit 1; }
i=0
until [ "$(curl -fsS "$BASE/v1/fleet" | jq -r .workers_lost)" -ge 1 ] 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-fleet: coordinator never declared the killed worker dead" >&2; exit 1; }
    sleep 0.1
done
curl -fsS "$BASE/v1/jobs/$FLEET_ID/result" | jq -S .matrix >"$OUT/fleet.json"

if ! cmp -s "$OUT/serial.json" "$OUT/fleet.json"; then
    echo "smoke-fleet: fleet matrix differs from serial" >&2
    diff "$OUT/serial.json" "$OUT/fleet.json" | head >&2 || true
    exit 1
fi

REQUEUES="$(curl -fsS "$BASE/v1/fleet" | jq -r .requeues)"
LOST="$(curl -fsS "$BASE/v1/fleet" | jq -r .workers_lost)"
echo "smoke-fleet: matrices identical; coordinator saw requeues=$REQUEUES workers_lost=$LOST"
echo "smoke-fleet: OK"
