#!/bin/sh
# smoke_stream.sh — CI smoke for the out-of-core streaming PSA path.
#
# Generates an ensemble whose loaded coordinate payload (~50 MiB)
# exceeds the streamed child's memory budget, runs `psa -max-frames`
# under GOMEMLIMIT (a soft GC target that keeps the heap honest, not a
# hard cap), and asserts:
#
#   1. the streamed run's actual peak RSS (VmHWM, sampled from /proc)
#      stays under RSS_BUDGET — an OS-level bound the in-memory run
#      cannot meet, so a regression that quietly materializes whole
#      trajectories fails here even if the self-reported metric lied,
#   2. the printed peak residency respects the 2×window bound, and
#   3. the streamed matrix is byte-identical to an unconstrained
#      in-memory run of the same input.
#
# On systems without /proc the RSS assertion degrades to a warning (the
# byte-identical and 2×window gates still hold); CI runs on Linux.
set -eu

BIN="$(mktemp -d)"
OUT="$(mktemp -d)"
PSA_PID=""

cleanup() {
    status=$?
    [ -n "$PSA_PID" ] && kill "$PSA_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN" "$OUT"
    if [ "$status" -ne 0 ]; then
        echo "smoke-stream: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "smoke-stream: building trajgen + psa"
go build -o "$BIN/trajgen" ./cmd/trajgen
go build -o "$BIN/psa" ./cmd/psa

# 4 trajectories × 2048 atoms × 256 frames: the loaded float64
# coordinate payload alone is 4·256·2048·24 ≈ 50 MiB (plus as much
# again for the pruned method's packed copies), while the streamed run
# holds at most 2 windows ≈ 3 MiB of frames.
WINDOW=32
LIMIT=40MiB
RSS_BUDGET_KB=$((120 * 1024))
echo "smoke-stream: generating the ensemble (~50 MiB of coordinates)"
"$BIN/trajgen" -kind ensemble -n 4 -atoms 2048 -frames 256 -seed 7 -out "$OUT/data" >/dev/null

# The matrix rows are the only deterministic output lines; timing and
# throughput lines vary run to run.
matrix_of() { # matrix_of <log>
    grep -E '^([ ]+-?[0-9]+\.[0-9]+)+$' "$1"
}

# vmhwm_kb <pid>: last observed VmHWM (peak RSS, monotone) of a live
# process; empty when /proc is unavailable.
vmhwm_kb() {
    awk '/^VmHWM:/ {print $2}' "/proc/$1/status" 2>/dev/null || true
}

echo "smoke-stream: unconstrained in-memory reference run"
"$BIN/psa" -in "$OUT/data" -engine serial -method pruned >"$OUT/mem.log"
matrix_of "$OUT/mem.log" >"$OUT/mem.matrix"
[ -s "$OUT/mem.matrix" ] || { echo "smoke-stream: reference run printed no matrix" >&2; exit 1; }

echo "smoke-stream: streamed run under GOMEMLIMIT=$LIMIT, window=$WINDOW"
GOMEMLIMIT=$LIMIT "$BIN/psa" -in "$OUT/data" -engine serial -method pruned \
    -max-frames "$WINDOW" >"$OUT/stream.log" &
PSA_PID=$!
PEAK_RSS_KB=""
while kill -0 "$PSA_PID" 2>/dev/null; do
    HWM="$(vmhwm_kb "$PSA_PID")"
    [ -n "$HWM" ] && PEAK_RSS_KB="$HWM"
    sleep 0.05
done
wait "$PSA_PID" || { PSA_PID=""; echo "smoke-stream: streamed run failed" >&2; exit 1; }
PSA_PID=""
matrix_of "$OUT/stream.log" >"$OUT/stream.matrix"

if [ -n "$PEAK_RSS_KB" ]; then
    echo "smoke-stream: streamed peak RSS ${PEAK_RSS_KB}KiB (budget ${RSS_BUDGET_KB}KiB)"
    if [ "$PEAK_RSS_KB" -gt "$RSS_BUDGET_KB" ]; then
        echo "smoke-stream: streamed run exceeded the RSS budget — out-of-core path is materializing input" >&2
        exit 1
    fi
else
    echo "smoke-stream: WARNING: /proc unavailable, skipping the RSS assertion" >&2
fi

grep -q "^streaming " "$OUT/stream.log" || {
    echo "smoke-stream: streamed run did not resolve input as a stream" >&2
    exit 1
}
PEAK="$(sed -n 's/^streaming: window=[0-9]* frames, peak resident=\([0-9]*\) frames.*/\1/p' "$OUT/stream.log")"
[ -n "$PEAK" ] || { echo "smoke-stream: no peak residency reported" >&2; exit 1; }
if [ "$PEAK" -gt $((2 * WINDOW)) ]; then
    echo "smoke-stream: peak resident $PEAK frames exceeds 2×window=$((2 * WINDOW))" >&2
    exit 1
fi

if ! cmp -s "$OUT/mem.matrix" "$OUT/stream.matrix"; then
    echo "smoke-stream: streamed matrix differs from the in-memory run" >&2
    diff "$OUT/mem.matrix" "$OUT/stream.matrix" | head >&2 || true
    exit 1
fi

echo "smoke-stream: matrices identical; peak resident $PEAK frames within budget"
echo "smoke-stream: OK"
