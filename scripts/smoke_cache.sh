#!/bin/sh
# smoke_cache.sh — CI smoke for the per-block content-addressed result
# store.
#
# Boots mdserver, runs a synth PSA job, then resubmits the same job
# grown by one trajectory and asserts — over the real HTTP API — that
# the delta submission recomputed only the new row/column blocks:
#
#   1. the base job (4 trajectories, n1=1 → 10 triangular blocks)
#      misses every block lookup;
#   2. the grown job (5 trajectories → 15 blocks) hits the 10 shared
#      blocks and computes exactly the 5 missing ones, evaluating only
#      the new trajectory's 4 comparisons (4 × 2F² = 128 directed
#      frame pairs at F=4);
#   3. /v1/metrics reports the same story service-wide: 10 block hits,
#      17 store entries (15 blocks + 2 whole-job results), bytes saved.
#
# The single trap reaps the server on any exit path, so an assertion
# failure can never leak an mdserver onto a CI runner's port.
set -eu

PORT="${SMOKE_CACHE_PORT:-18079}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    status=$?
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
    if [ "$status" -ne 0 ]; then
        echo "smoke-cache: FAILED (see above)" >&2
    fi
    exit "$status"
}
trap cleanup EXIT INT TERM HUP

echo "smoke-cache: building mdserver"
go build -o "$BIN/mdserver" ./cmd/mdserver

"$BIN/mdserver" -addr "127.0.0.1:$PORT" -workers 1 >"$BIN/mdserver.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "smoke-cache: mdserver never became healthy" >&2; exit 1; }
    sleep 0.1
done

submit() { # submit <count> -> job id
    curl -fsS -X POST "$BASE/v1/jobs" \
        -d "{\"analysis\":\"psa\",\"engine\":\"serial\",\"tasks\":64,\"synth\":{\"count\":$1,\"atoms\":8,\"frames\":4,\"seed\":42}}" |
        jq -r .id
}

wait_done() { # wait_done <id>
    _i=0
    while :; do
        _state="$(curl -fsS "$BASE/v1/jobs/$1" | jq -r .state)"
        [ "$_state" = "done" ] && return 0
        case "$_state" in
        failed | cancelled)
            echo "smoke-cache: job $1 ended $_state" >&2
            curl -fsS "$BASE/v1/jobs/$1" >&2 || true
            return 1
            ;;
        esac
        _i=$((_i + 1))
        [ "$_i" -ge 300 ] && { echo "smoke-cache: job $1 stuck in $_state" >&2; return 1; }
        sleep 0.1
    done
}

assert_eq() { # assert_eq <label> <got> <want>
    if [ "$2" != "$3" ]; then
        echo "smoke-cache: $1 = $2, want $3" >&2
        exit 1
    fi
}

echo "smoke-cache: running the 4-trajectory base job"
BASE_ID="$(submit 4)"
wait_done "$BASE_ID"
BASE_JOB="$(curl -fsS "$BASE/v1/jobs/$BASE_ID")"
assert_eq "base block_cache_hits" "$(echo "$BASE_JOB" | jq -r .metrics.block_cache_hits)" 0
assert_eq "base block_cache_misses" "$(echo "$BASE_JOB" | jq -r .metrics.block_cache_misses)" 10

echo "smoke-cache: resubmitting grown by one trajectory"
GROWN_ID="$(submit 5)"
wait_done "$GROWN_ID"
GROWN_JOB="$(curl -fsS "$BASE/v1/jobs/$GROWN_ID")"
assert_eq "delta block_cache_hits" "$(echo "$GROWN_JOB" | jq -r .metrics.block_cache_hits)" 10
assert_eq "delta block_cache_misses" "$(echo "$GROWN_JOB" | jq -r .metrics.block_cache_misses)" 5
assert_eq "delta pairs_evaluated" "$(echo "$GROWN_JOB" | jq -r .metrics.pairs_evaluated)" 128

RATIO="$(echo "$GROWN_JOB" | jq -r .block_hit_ratio)"
case "$RATIO" in
0.66*) ;;
*)
    echo "smoke-cache: delta block_hit_ratio = $RATIO, want 10/15" >&2
    exit 1
    ;;
esac

METRICS="$(curl -fsS "$BASE/v1/metrics")"
assert_eq "service block_cache.hits" "$(echo "$METRICS" | jq -r .block_cache.hits)" 10
assert_eq "service block_cache.entries" "$(echo "$METRICS" | jq -r .block_cache.entries)" 17
SAVED="$(echo "$METRICS" | jq -r .block_cache.bytes_saved)"
[ "$SAVED" -gt 0 ] 2>/dev/null || { echo "smoke-cache: bytes_saved = $SAVED, want > 0" >&2; exit 1; }

echo "smoke-cache: delta submission recomputed only the new row (10 hits, 5 misses, 128 pairs)"
echo "smoke-cache: OK"
