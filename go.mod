module mdtask

go 1.22
