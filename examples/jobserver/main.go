// Jobserver: drive the async analysis job service programmatically —
// the same jobs.Scheduler that cmd/mdserver exposes over HTTP. Submits
// a PSA job per engine, waits for them, then resubmits one to show the
// content-addressed result cache answering without recomputation.
//
// Run with: go run ./examples/jobserver
package main

import (
	"fmt"
	"log"
	"time"

	"mdtask/internal/jobs"
)

func main() {
	sched := jobs.NewScheduler(jobs.DefaultRegistry(), jobs.Options{Workers: 2})
	defer sched.Close()

	spec := jobs.Spec{
		Analysis: jobs.AnalysisPSA,
		Method:   "early-break",
		Synth:    &jobs.SynthSpec{Count: 6, Atoms: 64, Frames: 16, Seed: 1},
	}

	// One job per engine; all five produce bit-identical matrices.
	var submitted []*jobs.Job
	for _, eng := range jobs.Engines {
		s := spec
		s.Engine = eng
		job, err := sched.Submit(s)
		if err != nil {
			log.Fatal(err)
		}
		submitted = append(submitted, job)
	}
	for _, job := range submitted {
		st := wait(job)
		fmt.Printf("%s  engine=%-6s state=%-4s tasks=%-3d compute=%s\n",
			st.ID, st.Engine, st.State, st.Metrics.Tasks,
			st.Metrics.ComputeTime.Round(time.Microsecond))
	}

	// An identical resubmission is a cache hit: done immediately, no
	// engine tasks run. The kernel method is result-invariant (every
	// method computes the identical matrix), so even a different method
	// hits the same cache entry.
	s := spec
	s.Engine = jobs.Engines[0]
	s.Method = "pruned"
	again, err := sched.Submit(s)
	if err != nil {
		log.Fatal(err)
	}
	st := again.Status()
	fmt.Printf("%s  engine=%-6s method=%s state=%-4s cache_hit=%v\n",
		st.ID, st.Engine, s.Method, st.State, st.CacheHit)

	m := sched.Metrics()
	fmt.Printf("service: %d done, cache %d/%d hits, %d engine tasks total\n",
		m.Jobs[jobs.StateDone], m.CacheHits, m.CacheHits+m.CacheMisses, m.Engine.Tasks)
}

// wait polls a job to a terminal state.
func wait(job *jobs.Job) jobs.Status {
	for {
		st := job.Status()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
}
