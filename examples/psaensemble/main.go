// PSA ensemble example: run the same Path Similarity Analysis on all
// four task-parallel engines (§4.2 of the paper), verify they agree, and
// compare wall-clock times — the embarrassing-parallel case where the
// paper finds framework choice matters little.
//
// Run with: go run ./examples/psaensemble
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mdtask/internal/core"
	"mdtask/internal/hausdorff"
	"mdtask/internal/synth"
)

func main() {
	ens := synth.Ensemble(synth.EnsemblePreset{Name: "ens", NAtoms: 400, NFrames: 30}, 8, 11)
	fmt.Printf("ensemble: %d trajectories x %d atoms x %d frames\n\n",
		len(ens), ens[0].NAtoms, ens[0].NFrames())

	var reference []float64
	fmt.Printf("%-14s %-10s %10s %8s\n", "engine", "schedule", "elapsed", "agrees")
	for _, eng := range core.Engines {
		for _, full := range []bool{true, false} {
			schedule := "symmetric"
			if full {
				schedule = "full"
			}
			cfg := core.Config{Engine: eng, Parallelism: 4, Tasks: 16, FullMatrix: full}
			start := time.Now()
			m, err := core.PSA(cfg, ens, hausdorff.EarlyBreak)
			if err != nil {
				log.Fatalf("%v: %v", eng, err)
			}
			elapsed := time.Since(start)
			agrees := "ref"
			if reference == nil {
				reference = m.Data
			} else {
				agrees = "yes"
				for i := range reference {
					if math.Abs(reference[i]-m.Data[i]) > 1e-9 {
						agrees = "NO"
						break
					}
				}
			}
			fmt.Printf("%-14s %-10s %10s %8s\n", eng, schedule, elapsed.Round(time.Millisecond), agrees)
		}
	}
	fmt.Println("\nall engines and both schedules compute the identical distance")
	fmt.Println("matrix; the symmetric schedule does it with ~half the Hausdorff")
	fmt.Println("kernel invocations (H(A,B)=H(B,A)), and for this embarrassingly")
	fmt.Println("parallel analysis the paper finds programmability, not engine")
	fmt.Println("choice, is the deciding factor (§4.2).")
}
