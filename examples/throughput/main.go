// Throughput example: the paper's §4.1 task-throughput comparison at
// laptop scale — zero-workload tasks submitted to the real Spark-like,
// Dask-like and pilot engines. The architectural gap that dominates the
// paper's Figure 2 is visible directly: the pilot engine, whose every
// unit travels through a coordination database and the filesystem, is
// orders of magnitude slower than the in-process data-parallel engines.
// (The Dask-vs-Spark gap in the paper comes from PySpark's
// serialization costs, which native Go engines do not pay; the
// calibrated cluster model in `mdbench -exp fig2` reproduces it.)
//
// Run with: go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mdtask/internal/dask"
	"mdtask/internal/pilot"
	"mdtask/internal/rdd"
)

const nTasks = 2000

func main() {
	fmt.Printf("executing %d zero-workload tasks per engine\n\n", nTasks)
	fmt.Printf("%-14s %12s %14s\n", "engine", "elapsed", "tasks/sec")

	// Spark-like: one partition per task, empty map.
	ctx := rdd.NewContext(8)
	start := time.Now()
	if _, err := rdd.Map(rdd.Range(ctx, nTasks, nTasks), func(i int) (int, error) {
		return i, nil
	}).Collect(); err != nil {
		log.Fatal(err)
	}
	report("spark-like", time.Since(start))

	// Dask-like: one delayed node per task.
	client := dask.NewClient(8)
	nodes := make([]*dask.Delayed, nTasks)
	for i := range nodes {
		nodes[i] = client.Delayed("t", func([]interface{}) (interface{}, error) { return nil, nil })
	}
	start = time.Now()
	if _, err := client.Compute(nodes...); err != nil {
		log.Fatal(err)
	}
	report("dask-like", time.Since(start))

	// Pilot: every task is a Compute-Unit travelling through the
	// coordination DB — orders of magnitude slower, as in the paper.
	dir, err := os.MkdirTemp("", "throughput-pilot-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := pilot.Defaults()
	p, err := pilot.NewPilot(8, dir, pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()
	descs := make([]pilot.UnitDescription, nTasks/10) // fewer units: RP is slow
	for i := range descs {
		descs[i] = pilot.UnitDescription{Name: "t", Fn: func(string) error { return nil }}
	}
	start = time.Now()
	units, err := p.Submit(descs)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Wait(units); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("%-14s %12s %14.0f   (on %d units)\n",
		"pilot", elapsed.Round(time.Millisecond),
		float64(len(descs))/elapsed.Seconds(), len(descs))
}

func report(name string, elapsed time.Duration) {
	fmt.Printf("%-14s %12s %14.0f\n", name, elapsed.Round(time.Millisecond),
		float64(nTasks)/elapsed.Seconds())
}
