// Ensemble workflow example: the EnTK-style pipelines-of-stages pattern
// (the paper's Table-1 higher-level abstraction for RADICAL-Pilot)
// driving a simulate→analyze ensemble: each pipeline generates a
// trajectory in stage 1 (staged out as an MDT file) and computes its
// RMSD series against the first frame in stage 2, with all data flowing
// through the pilot's filesystem staging, as RADICAL-Pilot applications
// do.
//
// Run with: go run ./examples/ensemble_workflow
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mdtask/internal/entk"
	"mdtask/internal/linalg"
	"mdtask/internal/pilot"
	"mdtask/internal/synth"
	"mdtask/internal/traj"
)

const (
	nPipelines = 4
	nAtoms     = 500
	nFrames    = 25
)

func main() {
	dir, err := os.MkdirTemp("", "entk-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := pilot.Defaults()
	p, err := pilot.NewPilot(4, dir, pilot.NewDB(cfg.DBLatency), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()

	am := entk.NewAppManager(p)
	pipelines := make([]*entk.Pipeline, nPipelines)
	analyze := make([]*entk.Task, nPipelines)
	for i := range pipelines {
		i := i
		simulate := &entk.Task{
			Name:        "simulate",
			OutputFiles: []string{"traj.mdt"},
			Fn: func(sandbox string) error {
				tr := synth.Walk(fmt.Sprintf("replica-%d", i), nAtoms, nFrames, 7, uint64(i))
				return traj.WriteMDTFile(filepath.Join(sandbox, "traj.mdt"), tr, 4)
			},
		}
		pipelines[i] = (&entk.Pipeline{Name: fmt.Sprintf("replica-%d", i)}).
			AddStage((&entk.Stage{Name: "simulate"}).AddTask(simulate))
		analyze[i] = simulate // stage 2 wired after stage 1 data exists
	}
	if err := am.Run(pipelines...); err != nil {
		log.Fatal(err)
	}

	// Stage 2: analyze each replica's staged trajectory.
	results := make([]*entk.Task, nPipelines)
	analysis := make([]*entk.Pipeline, nPipelines)
	for i := range analysis {
		data, ok := analyze[i].Unit.Output("traj.mdt")
		if !ok {
			log.Fatalf("replica %d produced no trajectory", i)
		}
		task := &entk.Task{
			Name:        "rmsd",
			InputFiles:  map[string][]byte{"traj.mdt": data},
			OutputFiles: []string{"rmsd.txt"},
			Fn: func(sandbox string) error {
				tr, err := traj.ReadMDTFile(filepath.Join(sandbox, "traj.mdt"))
				if err != nil {
					return err
				}
				var buf bytes.Buffer
				ref := tr.Frames[0].Coords
				for _, f := range tr.Frames {
					fmt.Fprintf(&buf, "%.4f\n", linalg.RMSD(f.Coords, ref))
				}
				return os.WriteFile(filepath.Join(sandbox, "rmsd.txt"), buf.Bytes(), 0o644)
			},
		}
		results[i] = task
		analysis[i] = (&entk.Pipeline{Name: fmt.Sprintf("analyze-%d", i)}).
			AddStage((&entk.Stage{Name: "rmsd"}).AddTask(task))
	}
	if err := am.Run(analysis...); err != nil {
		log.Fatal(err)
	}

	for i, task := range results {
		out, _ := task.Unit.Output("rmsd.txt")
		lines := bytes.Count(out, []byte("\n"))
		last := lastLine(out)
		fmt.Printf("replica %d: %d RMSD values, final deviation %s Å\n", i, lines, last)
	}
	fmt.Printf("\nstaged %d bytes through the pilot's shared filesystem\n",
		p.Metrics().Snapshot().BytesStaged)
}

func lastLine(b []byte) string {
	b = bytes.TrimRight(b, "\n")
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		return string(b[i+1:])
	}
	return string(b)
}
