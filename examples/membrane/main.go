// Membrane example: identify the leaflets of a synthetic lipid bilayer
// with all four architectural approaches of the paper's Leaflet Finder
// (§4.3, Table 2) on the Spark-like engine, comparing their measured
// data-movement profiles.
//
// Run with: go run ./examples/membrane
package main

import (
	"fmt"
	"log"
	"time"

	"mdtask/internal/core"
	"mdtask/internal/leaflet"
	"mdtask/internal/synth"
)

func main() {
	const nAtoms = 65536
	sys := synth.Bilayer(nAtoms, 2024)
	lo, hi := sys.CountLeaflets()
	fmt.Printf("membrane: %d atoms (ground truth leaflets %d / %d), cutoff %.1f Å\n\n",
		nAtoms, lo, hi, synth.BilayerCutoff)

	fmt.Printf("%-32s %8s %10s %12s %12s %9s\n",
		"approach", "tasks", "edges", "broadcast", "shuffle", "elapsed")
	for _, approach := range leaflet.Approaches {
		cfg := core.Config{Engine: core.EngineSpark, Tasks: 256}
		start := time.Now()
		res, err := core.LeafletFinder(cfg, sys.Coords, synth.BilayerCutoff, approach)
		if err != nil {
			log.Fatalf("%v: %v", approach, err)
		}
		elapsed := time.Since(start)
		if len(res.Components) != 2 {
			log.Fatalf("%v: found %d components, want 2", approach, len(res.Components))
		}
		fmt.Printf("%-32s %8d %10d %12d %12d %9s\n",
			approach, res.Stats.Tasks, res.Stats.Edges,
			res.Stats.BroadcastBytes, res.Stats.ShuffleBytes,
			elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nnote the shuffle-volume drop from the edge-list approaches (1-2)")
	fmt.Println("to the partial-component approaches (3-4) — the paper's Table 2.")
}
