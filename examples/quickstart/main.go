// Quickstart: generate a small trajectory ensemble, run Path Similarity
// Analysis on the Dask-like engine through the high-level core API, and
// print the Hausdorff distance matrix.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mdtask/internal/core"
	"mdtask/internal/hausdorff"
	"mdtask/internal/synth"
)

func main() {
	// Six random-walk trajectories of 200 atoms over 40 frames.
	ens := synth.Ensemble(synth.EnsemblePreset{Name: "demo", NAtoms: 200, NFrames: 40}, 6, 1)

	cfg := core.Config{Engine: core.EngineDask, Parallelism: 4}
	m, err := core.PSA(cfg, ens, hausdorff.EarlyBreak)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PSA Hausdorff distance matrix (Å):")
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			fmt.Printf("%7.2f", m.At(i, j))
		}
		fmt.Println()
	}

	// The decision framework (paper Table 3) picks an engine for a
	// throughput-bound, shuffle-free workload like this one.
	recs, err := core.Recommend(core.Requirements{
		Needs: []core.Criterion{core.Throughput, core.ManyTasks, core.PythonNative},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended engine for this workload: %s\n", recs[0].Engine)
}
