GO ?= go
SERVE_ADDR ?= :8077
SMOKE_PORT ?= 18077

.PHONY: build test bench bench-json fmt vet serve smoke-serve

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Run the analysis job server (cmd/mdserver) in the foreground.
serve:
	$(GO) run ./cmd/mdserver -addr $(SERVE_ADDR)

# CI smoke: build mdserver, start it, hit /healthz, submit a tiny synth
# PSA job, poll it to completion and assert a 200 result.
smoke-serve:
	$(GO) build -o /tmp/mdserver ./cmd/mdserver
	@set -e; \
	/tmp/mdserver -addr 127.0.0.1:$(SMOKE_PORT) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -fsS http://127.0.0.1:$(SMOKE_PORT)/healthz >/dev/null 2>&1 && break; \
	  sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:$(SMOKE_PORT)/healthz; echo; \
	id=$$(curl -fsS -X POST http://127.0.0.1:$(SMOKE_PORT)/v1/jobs \
	  -d '{"analysis":"psa","engine":"dask","synth":{"count":3,"atoms":8,"frames":4}}' | jq -r .id); \
	echo "submitted $$id"; \
	for i in $$(seq 1 100); do \
	  state=$$(curl -fsS http://127.0.0.1:$(SMOKE_PORT)/v1/jobs/$$id | jq -r .state); \
	  [ "$$state" = "done" ] && break; \
	  [ "$$state" = "failed" ] && { echo "job failed" >&2; exit 1; }; \
	  sleep 0.1; \
	done; \
	[ "$$state" = "done" ] || { echo "job stuck in $$state" >&2; exit 1; }; \
	curl -fsS -o /dev/null -w '%{http_code}\n' http://127.0.0.1:$(SMOKE_PORT)/v1/jobs/$$id/result | grep -q 200; \
	echo "smoke-serve OK"

bench:
	$(GO) test -bench 'PSA|Hausdorff' -run '^$$' ./internal/bench/

# Record the PSA Hausdorff kernel perf trajectory (ns/op + frame-pair
# counters + pruned fraction per kernel method) to BENCH_psa.json.
bench-json:
	MDTASK_BENCH_JSON=$(CURDIR)/BENCH_psa.json $(GO) test -count=1 ./internal/bench/ -run TestWriteBenchPSAJSON -v
	@cat $(CURDIR)/BENCH_psa.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
