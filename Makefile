GO ?= go

.PHONY: build test bench fmt vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

bench:
	$(GO) test -bench PSA -run '^$$' ./internal/bench/

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
