GO ?= go
SERVE_ADDR ?= :8077
SMOKE_PORT ?= 18077
BENCH_CURRENT ?= /tmp/mdtask-bench-current.json
FUZZTIME ?= 10s

.PHONY: build test bench bench-json bench-gate docslint fmt vet serve smoke-serve smoke-fleet smoke-stream smoke-cache smoke-obs smoke-crash fuzz race loadgate

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Run the analysis job server (cmd/mdserver) in the foreground.
serve:
	$(GO) run ./cmd/mdserver -addr $(SERVE_ADDR)

# CI smoke: build mdserver, start it, hit /healthz, submit a tiny synth
# PSA job, poll it to completion and assert a 200 result. The trap
# covers INT/TERM/HUP as well as EXIT and reaps the server, so an
# assertion failure (or a cancelled CI run) never leaks an mdserver
# onto the runner's port; the binary lives in a per-run scratch dir so
# parallel invocations cannot trample each other.
smoke-serve:
	@set -eu; \
	bin=$$(mktemp -d); pid=""; \
	trap 'status=$$?; [ -n "$$pid" ] && kill $$pid 2>/dev/null || true; \
	      wait 2>/dev/null || true; rm -rf "$$bin"; exit $$status' EXIT INT TERM HUP; \
	$(GO) build -o $$bin/mdserver ./cmd/mdserver; \
	$$bin/mdserver -addr 127.0.0.1:$(SMOKE_PORT) & pid=$$!; \
	for i in $$(seq 1 50); do \
	  curl -fsS http://127.0.0.1:$(SMOKE_PORT)/healthz >/dev/null 2>&1 && break; \
	  sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:$(SMOKE_PORT)/healthz; echo; \
	id=$$(curl -fsS -X POST http://127.0.0.1:$(SMOKE_PORT)/v1/jobs \
	  -d '{"analysis":"psa","engine":"dask","synth":{"count":3,"atoms":8,"frames":4}}' | jq -r .id); \
	echo "submitted $$id"; \
	state=queued; \
	for i in $$(seq 1 100); do \
	  state=$$(curl -fsS http://127.0.0.1:$(SMOKE_PORT)/v1/jobs/$$id | jq -r .state); \
	  [ "$$state" = "done" ] && break; \
	  [ "$$state" = "failed" ] && { echo "job failed" >&2; exit 1; }; \
	  sleep 0.1; \
	done; \
	[ "$$state" = "done" ] || { echo "job stuck in $$state" >&2; exit 1; }; \
	curl -fsS -o /dev/null -w '%{http_code}\n' http://127.0.0.1:$(SMOKE_PORT)/v1/jobs/$$id/result | grep -q 200; \
	echo "smoke-serve OK"

# CI smoke for the fleet engine: mdserver + 2 external mdworkers, one
# SIGKILLed mid-job; the job must finish with a matrix identical to
# the serial engine's (see scripts/smoke_fleet.sh).
smoke-fleet:
	sh scripts/smoke_fleet.sh

# CI smoke for the block-level result store: submit a synth PSA job,
# resubmit it grown by one trajectory, and assert via the HTTP API that
# only the new row/column blocks ran — 10 block hits, 5 misses, and
# exactly the new trajectory's frame pairs evaluated (see
# scripts/smoke_cache.sh).
smoke-cache:
	sh scripts/smoke_cache.sh

# CI smoke for the observability layer: mdserver + 2 external
# mdworkers with /metrics listeners; both expositions must parse, the
# POST /v1/jobs counters must equal the submissions made, and the
# fleet job's Chrome trace must span both processes with every
# worker-side kernel span parented under a coordinator-side lease
# span (see scripts/smoke_obs.sh).
smoke-obs:
	sh scripts/smoke_obs.sh

# CI gate for the durable job store: mdserver with a -data-dir journal
# is SIGKILLed mid-fleet-job and restarted against the same directory;
# zero jobs may be lost, the recovered job must complete byte-identical
# to the serial reference, and /metrics must expose the recovery
# evidence (see scripts/smoke_crash.sh).
smoke-crash:
	sh scripts/smoke_crash.sh

# CI smoke for out-of-core streaming: an ensemble whose loaded payload
# exceeds the streamed child's RSS budget must run to completion with
# `psa -max-frames` inside that budget (peak RSS sampled from /proc),
# byte-identical to the unconstrained run (see scripts/smoke_stream.sh).
smoke-stream:
	sh scripts/smoke_stream.sh

# Run the trajectory-decoder fuzz targets for FUZZTIME each (native
# `go test -fuzz`; seed corpora live in internal/traj/testdata/fuzz).
fuzz:
	$(GO) test -fuzz FuzzReadXYZT -fuzztime $(FUZZTIME) -run '^$$' ./internal/traj/
	$(GO) test -fuzz FuzzDecodeMDT -fuzztime $(FUZZTIME) -run '^$$' ./internal/traj/
	$(GO) test -fuzz FuzzWindowRoundTrip -fuzztime $(FUZZTIME) -run '^$$' ./internal/traj/

# Dedicated race gate over the concurrency-heavy layers (the serving
# scheduler with its journal and crash-point tests, the WAL, the fleet
# coordinator/worker protocol, and the streamed PSA cancel paths),
# independent of the main test matrix.
race:
	$(GO) test -race -count=1 ./internal/jobs/... ./internal/fleet/... ./internal/psa/... ./internal/wal/... ./internal/faultinject/...

bench:
	$(GO) test -bench 'PSA|Hausdorff' -run '^$$' ./internal/bench/

# Record the PSA Hausdorff kernel perf trajectory (ns/op + frame-pair
# counters + pruned fraction per kernel method) to BENCH_psa.json.
bench-json:
	MDTASK_BENCH_JSON=$(CURDIR)/BENCH_psa.json $(GO) test -count=1 ./internal/bench/ -run TestWriteBenchPSAJSON -v
	@cat $(CURDIR)/BENCH_psa.json

# Kernel-efficiency regression gate: record the current counters to a
# scratch path and compare against the committed BENCH_psa.json.
# Counters are deterministic (fixed synth seeds), so the tolerance only
# absorbs future intentional jitter; wall-clock never gates.
bench-gate:
	MDTASK_BENCH_JSON=$(BENCH_CURRENT) $(GO) test -count=1 ./internal/bench/ -run TestWriteBenchPSAJSON
	$(GO) run ./cmd/benchgate -baseline $(CURDIR)/BENCH_psa.json -current $(BENCH_CURRENT)

# CI gate for the production load harness: mdserver (small queue,
# journal) + 2 healthy mdworkers run the full non-chaos scenario suite
# under cmd/mdload with every deterministic invariant gating (zero
# lost jobs, exact shed/submit accounting, Retry-After on 429s, 413 on
# oversized bodies, wal_records_skipped == 0, no goroutine leaks);
# then a third, MDTASK_FAULTS-armed worker takes the chaos scenario,
# which must find evidence of the injected faults. Latency lands in
# BENCH_load.json / load_latency.csv but never gates (see
# scripts/loadgate.sh).
loadgate:
	sh scripts/loadgate.sh

# Documentation lint: every internal/cmd package must carry a
# substantive package doc comment stating its role and pipeline place
# (see scripts/docslint.sh). Gating in CI.
docslint:
	sh scripts/docslint.sh

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
